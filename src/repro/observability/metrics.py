"""Process-wide, swappable metrics registry.

Instrumented code accounts its work through a :class:`MetricsRegistry`:
counters for monotonically growing tallies (words decoded, bitvectors
touched), gauges for point-in-time values, and power-of-two-bucketed
histograms for ns-resolution latencies.  The default registry is a
:class:`NullRegistry` whose instruments are shared no-ops, so the hot paths
(WAH word loops, VA-file scans) stay at their uninstrumented cost until an
operator installs a real registry with :func:`set_registry` or
:func:`use_registry`.

Instruments are thread-safe: ``execute_batch(parallel=True)`` and the
shard worker pool increment counters from worker threads, so every
mutation (``inc``/``set``/``observe``) takes a per-instrument lock —
``self.value += amount`` spans three bytecodes in CPython and *does* lose
updates under contention without one.  Instrument creation is
double-checked against a registry-level lock.  The locks only cost
anything once a real registry is installed (the null instruments override
every mutator with a pass), and there is still no allocation after an
instrument's first use.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro import forksafe
from repro.observability.trace import current_span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "NULL_REGISTRY",
    "suppressed",
    "enabled",
    "get_registry",
    "record",
    "observe",
    "set_registry",
    "use_registry",
]


class Counter:
    """A monotonically increasing tally (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1)."""
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value that can move both ways (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value upward."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the current value downward."""
        with self._lock:
            self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


#: Number of power-of-two histogram buckets: bucket ``i`` holds values whose
#: bit length is ``i``, i.e. the range ``[2**(i-1), 2**i)``; bucket 0 holds 0.
_NBUCKETS = 64


class Histogram:
    """A power-of-two-bucketed histogram for ns-scale measurements.

    Buckets are exponential (value ``v`` lands in bucket ``v.bit_length()``),
    which keeps :meth:`observe` at two int ops and one list write while still
    supporting useful quantile estimates over nine decades of nanoseconds.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.min: int | float | None = None
        self.max: int | float | None = None
        self.buckets = [0] * _NBUCKETS
        self._lock = threading.Lock()

    def merge(self, count, total, low, high, buckets) -> None:
        """Fold another histogram's dumped state into this one.

        The cross-process half of :meth:`MetricsRegistry.merge_state`:
        shard workers observe into their own registry and the parent folds
        the resulting ``(count, total, min, max, buckets)`` tuples back in,
        so quantiles/means over the merged registry equal what a
        single-process run would have measured.
        """
        if count == 0:
            return
        with self._lock:
            self.count += count
            self.total += total
            if low is not None and (self.min is None or low < self.min):
                self.min = low
            if high is not None and (self.max is None or high > self.max):
                self.max = high
            for index, n in enumerate(buckets[:_NBUCKETS]):
                self.buckets[index] += n

    def observe(self, value: int | float) -> None:
        """Record one measurement (negative values clamp to bucket 0)."""
        index = int(value).bit_length() if value > 0 else 0
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self.buckets[min(index, _NBUCKETS - 1)] += 1

    @contextmanager
    def time(self) -> Iterator[None]:
        """Observe the wall-clock nanoseconds of the ``with`` body."""
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            self.observe(time.perf_counter_ns() - start)

    @property
    def mean(self) -> float:
        """Arithmetic mean of observations (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bucket bound)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, n in enumerate(self.buckets):
            seen += n
            if seen >= target:
                return float(2**index - 1) if index else 0.0
        return float(self.max if self.max is not None else 0.0)

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, "
            f"mean={self.mean:.1f})"
        )


@dataclass(frozen=True, slots=True)
class HistogramSnapshot:
    """Immutable summary of one histogram at snapshot time."""

    count: int
    total: float
    min: float
    max: float
    mean: float
    p50: float
    p99: float


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Immutable view of a registry's instruments at one moment."""

    counters: Mapping[str, int | float]
    gauges: Mapping[str, float]
    histograms: Mapping[str, HistogramSnapshot]

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)


class MetricsRegistry:
    """A namespace of counters, gauges, and histograms.

    Instruments are created on first use and live for the registry's
    lifetime, so call sites can re-fetch by name without allocation churn.
    Metric names are dot-separated paths (``wah.words_decoded``,
    ``engine.query_ns.bre``); exporters map them to their format's
    conventions (see :mod:`repro.observability.export`).
    """

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()
        forksafe.register(self)

    def _reset_after_fork(self) -> None:
        # Replace every lock a forking parent thread may have held; the
        # instrument *values* carry over (they are the parent's snapshot).
        self._lock = threading.Lock()
        for table in (self._counters, self._gauges, self._histograms):
            for instrument in table.values():
                instrument._lock = threading.Lock()

    def _get_or_create(self, table: dict, name: str, factory):
        # Fast path: racing readers see either None or the one instrument.
        instrument = table.get(name)
        if instrument is None:
            with self._lock:
                instrument = table.get(name)
                if instrument is None:
                    instrument = table[name] = factory(name)
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter with this name, created on first use."""
        return self._get_or_create(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge with this name, created on first use."""
        return self._get_or_create(self._gauges, name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram with this name, created on first use."""
        return self._get_or_create(self._histograms, name, Histogram)

    def timer(self, name: str):
        """Context manager timing the ``with`` body into a histogram."""
        return self.histogram(name).time()

    def snapshot(self) -> MetricsSnapshot:
        """An immutable copy of every instrument's current state."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        return MetricsSnapshot(
            counters={n: c.value for n, c in counters},
            gauges={n: g.value for n, g in gauges},
            histograms={
                n: HistogramSnapshot(
                    count=h.count,
                    total=float(h.total),
                    min=float(h.min if h.min is not None else 0),
                    max=float(h.max if h.max is not None else 0),
                    mean=h.mean,
                    p50=h.quantile(0.5),
                    p99=h.quantile(0.99),
                )
                for n, h in histograms
            },
        )

    def dump_state(self) -> dict:
        """Plain-dict state for shipping across a process boundary.

        Shard workers observe into their own registry, pickle this payload
        back over the pipe, and the parent folds it in with
        :meth:`merge_state` — so a scatter-gather over processes leaves the
        parent registry with exactly the counters a threaded fan-out would
        have produced.
        """
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        return {
            "counters": {n: c.value for n, c in counters},
            "gauges": {n: g.value for n, g in gauges},
            "histograms": {
                n: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                    "buckets": list(h.buckets),
                }
                for n, h in histograms
            },
        }

    def merge_state(self, payload: Mapping) -> None:
        """Fold a :meth:`dump_state` payload into this registry.

        Counters add, gauges take the incoming value (last write wins, as
        with any gauge), histograms merge bucket-wise.
        """
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, state in payload.get("histograms", {}).items():
            self.histogram(name).merge(
                state["count"],
                state["total"],
                state["min"],
                state["max"],
                state["buckets"],
            )

    def reset(self) -> None:
        """Drop every instrument."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by the null registry."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: int | float) -> None:
        pass

    @contextmanager
    def time(self) -> Iterator[None]:
        yield


class NullRegistry(MetricsRegistry):
    """The default registry: every instrument is a shared no-op.

    Keeping the interface identical means instrumented code never branches
    on whether metrics are on; it just talks to whatever registry is
    installed, and this one discards everything.
    """

    def __init__(self):
        super().__init__()
        self._counter = _NullCounter("<null>")
        self._gauge = _NullGauge("<null>")
        self._histogram = _NullHistogram("<null>")

    def counter(self, name: str) -> Counter:
        return self._counter

    def gauge(self, name: str) -> Gauge:
        return self._gauge

    def histogram(self, name: str) -> Histogram:
        return self._histogram

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(counters={}, gauges={}, histograms={})


#: The process-default registry; instruments vanish into it.
NULL_REGISTRY = NullRegistry()

_registry: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently installed registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install a registry process-wide; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


@contextmanager
def use_registry(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Install a registry (a fresh one by default) for the ``with`` body."""
    if registry is None:
        registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


_suppress_depth = 0
_suppress_lock = threading.Lock()


def _reset_suppress_after_fork() -> None:
    # The thread that held the suppress lock (or depth) does not exist in
    # a fork child; start the child unsuppressed with a fresh lock.
    global _suppress_depth, _suppress_lock
    _suppress_depth = 0
    _suppress_lock = threading.Lock()


forksafe.register_callback(_reset_suppress_after_fork)


@contextmanager
def suppressed() -> Iterator[None]:
    """Discard every record/observe inside the ``with`` body.

    Used around *probe* executions — e.g. the planner asking an encoding
    how many bitvectors an interval would touch, which some encodings
    answer by dry-running the evaluation — so estimation work never leaks
    into the counters that are supposed to measure real query work.

    The depth is process-wide (suppressing in one thread suppresses all),
    which is the conservative choice for the places it is used — planner
    cost probes that run before any fan-out; the lock only guards the
    depth updates, not the hot-path read.
    """
    global _suppress_depth
    with _suppress_lock:
        _suppress_depth += 1
    try:
        yield
    finally:
        with _suppress_lock:
            _suppress_depth -= 1


def enabled() -> bool:
    """Whether any sink (real registry or active trace) is listening.

    Instrumentation sites use this to skip *derived* tallies that would
    cost real work to compute (e.g. the fill/literal breakdown of a WAH
    word stream); plain increments just call :func:`record`, which is its
    own cheap no-op when nothing listens.
    """
    if _suppress_depth:
        return False
    return _registry is not NULL_REGISTRY or current_span() is not None


def record(name: str, value: int | float = 1) -> None:
    """Increment a counter on the registry and on the active span, if any."""
    if _suppress_depth:
        return
    registry = _registry
    if registry is not NULL_REGISTRY:
        registry.counter(name).inc(value)
    span = current_span()
    if span is not None:
        span.add_metric(name, value)


def observe(name: str, value: int | float) -> None:
    """Record one histogram observation on the installed registry."""
    if _suppress_depth:
        return
    registry = _registry
    if registry is not NULL_REGISTRY:
        registry.histogram(name).observe(value)
