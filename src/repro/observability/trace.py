"""Per-query span trees (:class:`QueryTrace`).

A trace records *where* a query spent its work: the engine opens a root
span, each access method opens child spans for its phases (one per query
dimension for bitmap interval evaluations, scan/refine for VA-files), and
every counter recorded through :func:`repro.observability.record` while a
span is open is attributed to that span.  The result is a tree whose leaf
counters explain the query the same way the paper's evaluation does —
bitvectors touched, words processed, approximations scanned — next to
ns-resolution per-span timings.

Tracing is opt-in and scoped: nothing in this module is active unless a
trace has been installed with :func:`activate` (the engine does that when
``execute(..., trace=True)`` is requested), so instrumented hot paths pay
only a single context-variable read when tracing is off.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

__all__ = [
    "Span",
    "QueryTrace",
    "activate",
    "current_span",
    "current_trace",
    "trace_span",
]


class Span:
    """One node of a query trace: a named, timed section with counters."""

    __slots__ = ("name", "attributes", "metrics", "children",
                 "start_ns", "end_ns")

    def __init__(self, name: str, **attributes):
        self.name = name
        self.attributes: dict[str, object] = dict(attributes)
        self.metrics: dict[str, int | float] = {}
        self.children: list[Span] = []
        self.start_ns: int = time.perf_counter_ns()
        self.end_ns: int | None = None

    @property
    def duration_ns(self) -> int | None:
        """Elapsed nanoseconds, or None while the span is still open."""
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    def set(self, key: str, value) -> None:
        """Attach one attribute to this span."""
        self.attributes[key] = value

    def add_metric(self, name: str, value: int | float = 1) -> None:
        """Accumulate a counter increment onto this span."""
        self.metrics[name] = self.metrics.get(name, 0) + value

    def walk(self) -> Iterator[tuple[int, "Span"]]:
        """Yield ``(depth, span)`` pairs depth-first, this span at depth 0."""
        stack: list[tuple[int, Span]] = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))

    def metric(self, name: str) -> int | float:
        """Sum of one counter over this span and all its descendants."""
        return sum(span.metrics.get(name, 0) for _, span in self.walk())

    def find(self, name: str) -> list["Span"]:
        """All descendant spans (including self) with the given name."""
        return [span for _, span in self.walk() if span.name == name]

    def to_payload(self) -> dict:
        """Plain-dict form of this span tree for cross-process transport.

        Shard workers serialize their per-shard trace roots with this and
        the parent re-hydrates them with :meth:`from_payload` under its
        ``sharded_query`` root.  Timestamps are ``perf_counter_ns`` values
        from the *worker's* clock domain: durations are meaningful, but
        start/end offsets are not comparable with parent spans.
        """
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "metrics": dict(self.metrics),
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "children": [child.to_payload() for child in self.children],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Span":
        """Rebuild a span tree dumped by :meth:`to_payload`."""
        span = cls(payload["name"])
        span.attributes = dict(payload.get("attributes", {}))
        span.metrics = dict(payload.get("metrics", {}))
        span.start_ns = payload.get("start_ns", 0)
        span.end_ns = payload.get("end_ns")
        span.children = [
            cls.from_payload(child) for child in payload.get("children", [])
        ]
        return span

    def __repr__(self) -> str:
        dur = self.duration_ns
        timing = f", {dur / 1e6:.3f}ms" if dur is not None else ", open"
        return f"Span({self.name!r}, children={len(self.children)}{timing})"


class QueryTrace:
    """A span tree built while one query executes.

    The engine owns the root span; instrumented code opens nested spans via
    :func:`trace_span` (or :meth:`span` when it holds the trace directly).
    """

    __slots__ = ("root", "_stack")

    def __init__(self, name: str = "query", **attributes):
        self.root = Span(name, **attributes)
        self._stack: list[Span] = [self.root]

    @property
    def current(self) -> Span:
        """The innermost open span."""
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, **attributes) -> Iterator[Span]:
        """Open a child span of the current span for the ``with`` body."""
        span = Span(name, **attributes)
        self.current.children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end_ns = time.perf_counter_ns()
            self._stack.pop()

    def annotate(self, key: str, value) -> None:
        """Attach one attribute to the innermost open span."""
        self.current.set(key, value)

    def add(self, name: str, value: int | float = 1) -> None:
        """Accumulate a counter increment onto the innermost open span."""
        self.current.add_metric(name, value)

    def close(self) -> None:
        """Close the root span (idempotent)."""
        if self.root.end_ns is None:
            self.root.end_ns = time.perf_counter_ns()

    def metric(self, name: str) -> int | float:
        """Sum of one counter over the whole tree."""
        return self.root.metric(name)

    def find(self, name: str) -> list[Span]:
        """All spans in the tree with the given name."""
        return self.root.find(name)

    def format(self) -> str:
        """Render the tree as indented text, one span per line.

        Counters follow each span on indented continuation lines so wide
        spans stay readable; attributes render inline after the name.
        """
        lines = []
        for depth, span in self.root.walk():
            pad = "  " * depth
            dur = span.duration_ns
            timing = f" [{dur / 1e6:.3f}ms]" if dur is not None else ""
            attrs = ""
            if span.attributes:
                attrs = " {" + ", ".join(
                    f"{k}={v}" for k, v in span.attributes.items()
                ) + "}"
            lines.append(f"{pad}{span.name}{attrs}{timing}")
            for name in sorted(span.metrics):
                lines.append(f"{pad}  . {name} = {span.metrics[name]:g}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"QueryTrace(spans={sum(1 for _ in self.root.walk())})"


#: The trace the current query execution is populating, if any.
_ACTIVE: ContextVar[QueryTrace | None] = ContextVar(
    "repro_active_trace", default=None
)


def current_trace() -> QueryTrace | None:
    """The trace being populated right now, or None when tracing is off."""
    return _ACTIVE.get()


def current_span() -> Span | None:
    """The innermost open span of the active trace, if any."""
    trace = _ACTIVE.get()
    if trace is None:
        return None
    return trace.current


@contextmanager
def activate(trace: QueryTrace) -> Iterator[QueryTrace]:
    """Make ``trace`` the active trace for the ``with`` body."""
    token = _ACTIVE.set(trace)
    try:
        yield trace
    finally:
        _ACTIVE.reset(token)


@contextmanager
def trace_span(name: str, **attributes) -> Iterator[Span | None]:
    """Open a span on the active trace; a no-op yielding None without one."""
    trace = _ACTIVE.get()
    if trace is None:
        yield None
        return
    with trace.span(name, **attributes) as span:
        yield span
