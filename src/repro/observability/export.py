"""Exporters rendering a :class:`MetricsSnapshot` for humans and scrapers.

Three formats, all pure functions over an immutable snapshot (or anything
with a ``snapshot()`` method, e.g. a live registry):

* :func:`render_table` — aligned text for terminals and experiment logs;
* :func:`render_jsonl` — one JSON object per instrument, for ingestion;
* :func:`render_prometheus` — Prometheus text exposition format (dots in
  metric names become underscores; histograms export as summaries).
"""

from __future__ import annotations

import json

from repro.observability.metrics import MetricsSnapshot

__all__ = ["render_table", "render_jsonl", "render_prometheus"]


def _snapshot_of(source) -> MetricsSnapshot:
    if isinstance(source, MetricsSnapshot):
        return source
    return source.snapshot()


def render_table(source) -> str:
    """Aligned three-column text table: metric, type, value."""
    snapshot = _snapshot_of(source)
    rows: list[tuple[str, str, str]] = []
    for name, value in snapshot.counters.items():
        rows.append((name, "counter", f"{value:,}"))
    for name, value in snapshot.gauges.items():
        rows.append((name, "gauge", f"{value:g}"))
    for name, hist in snapshot.histograms.items():
        rows.append((
            name,
            "histogram",
            (
                f"count={hist.count:,} mean={hist.mean:,.0f} "
                f"min={hist.min:,.0f} max={hist.max:,.0f} "
                f"p50~{hist.p50:,.0f} p99~{hist.p99:,.0f}"
            ),
        ))
    if not rows:
        return "(no metrics recorded)"
    headers = ("metric", "type", "value")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(3)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def render_jsonl(source) -> str:
    """One JSON object per line per instrument (``name``, ``type``, values)."""
    snapshot = _snapshot_of(source)
    lines = []
    for name, value in snapshot.counters.items():
        lines.append(json.dumps(
            {"name": name, "type": "counter", "value": value},
            sort_keys=True,
        ))
    for name, value in snapshot.gauges.items():
        lines.append(json.dumps(
            {"name": name, "type": "gauge", "value": value},
            sort_keys=True,
        ))
    for name, hist in snapshot.histograms.items():
        lines.append(json.dumps(
            {
                "name": name,
                "type": "histogram",
                "count": hist.count,
                "sum": hist.total,
                "min": hist.min,
                "max": hist.max,
                "mean": hist.mean,
                "p50": hist.p50,
                "p99": hist.p99,
            },
            sort_keys=True,
        ))
    return "\n".join(lines)


def _prom_name(name: str) -> str:
    """A valid Prometheus metric name: ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    sanitized = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return sanitized


def render_prometheus(source, prefix: str = "repro") -> str:
    """Prometheus text exposition format (version 0.0.4).

    Every metric family gets its ``# HELP`` and ``# TYPE`` comment lines
    (in that order, as the format specifies).  Counters get a ``_total``
    suffix per convention; histograms export as summaries — the two
    bucket-estimated quantile samples plus the ``<name>_sum`` /
    ``<name>_count`` pair scrapers use for rate-of-mean queries.
    """
    snapshot = _snapshot_of(source)
    lines: list[str] = []
    for name, value in snapshot.counters.items():
        metric = f"{prefix}_{_prom_name(name)}_total"
        lines.append(f"# HELP {metric} Counter {name!r}.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot.gauges.items():
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# HELP {metric} Gauge {name!r}.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, hist in snapshot.histograms.items():
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(
            f"# HELP {metric} Summary of histogram {name!r} "
            f"(bucket-estimated quantiles)."
        )
        lines.append(f"# TYPE {metric} summary")
        lines.append(f'{metric}{{quantile="0.5"}} {hist.p50}')
        lines.append(f'{metric}{{quantile="0.99"}} {hist.p99}')
        lines.append(f"{metric}_sum {hist.total}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")
