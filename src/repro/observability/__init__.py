"""Query-path observability: metrics registry, per-query traces, exporters.

The paper's evaluation argues from operation-level accounting — words
scanned by WAH ops, bitvectors touched per query dimension, VA-file
candidates vs. records refined — and this package makes those quantities
first-class at runtime:

* :mod:`repro.observability.metrics` — a process-wide but swappable
  :class:`MetricsRegistry` (counters, gauges, ns histograms) whose default
  is a no-op :class:`NullRegistry`, so instrumentation can stay on in hot
  loops;
* :mod:`repro.observability.trace` — opt-in :class:`QueryTrace` span trees
  populated by ``IncompleteDatabase.execute(query, trace=True)`` and
  rendered by ``explain(..., analyze=True)``;
* :mod:`repro.observability.export` — text table, JSON lines, and
  Prometheus renderings of any registry snapshot;
* :mod:`repro.observability.workload` — an always-on
  :class:`WorkloadRecorder` keeping one normalized record per executed
  query (bounded ring + rotating JSONL sink + advisor-shaped summary),
  no-op by default like the registry;
* :mod:`repro.observability.slowlog` — a :class:`SlowQueryLog` retaining
  the N worst threshold-crossing queries with their span trees;
* :mod:`repro.observability.server` — a stdlib HTTP thread serving
  ``/metrics`` (Prometheus), ``/healthz``, ``/varz``, and ``/workload``.

The metric names and span naming scheme are documented in
``docs/observability.md``; ``docs/cost-model.md`` maps each cost-model term
to the counter that measures it.
"""

from repro.observability.export import (
    render_jsonl,
    render_prometheus,
    render_table,
)
from repro.observability.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    enabled,
    get_registry,
    observe,
    record,
    set_registry,
    suppressed,
    use_registry,
)
from repro.observability.server import (
    TelemetryServer,
    start_telemetry_server,
)
from repro.observability.slowlog import SlowQueryEntry, SlowQueryLog
from repro.observability.trace import (
    QueryTrace,
    Span,
    activate,
    current_span,
    current_trace,
    trace_span,
)
from repro.observability.workload import (
    NULL_RECORDER,
    NullWorkloadRecorder,
    RotatingJsonlSink,
    WorkloadRecord,
    WorkloadRecorder,
    get_recorder,
    set_recorder,
    use_recorder,
    workload_summary,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "NullWorkloadRecorder",
    "NULL_RECORDER",
    "NULL_REGISTRY",
    "QueryTrace",
    "RotatingJsonlSink",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "TelemetryServer",
    "WorkloadRecord",
    "WorkloadRecorder",
    "activate",
    "current_span",
    "current_trace",
    "enabled",
    "get_recorder",
    "get_registry",
    "observe",
    "record",
    "render_jsonl",
    "render_prometheus",
    "render_table",
    "set_recorder",
    "set_registry",
    "start_telemetry_server",
    "suppressed",
    "trace_span",
    "use_recorder",
    "use_registry",
    "workload_summary",
]
