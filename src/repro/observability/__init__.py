"""Query-path observability: metrics registry, per-query traces, exporters.

The paper's evaluation argues from operation-level accounting — words
scanned by WAH ops, bitvectors touched per query dimension, VA-file
candidates vs. records refined — and this package makes those quantities
first-class at runtime:

* :mod:`repro.observability.metrics` — a process-wide but swappable
  :class:`MetricsRegistry` (counters, gauges, ns histograms) whose default
  is a no-op :class:`NullRegistry`, so instrumentation can stay on in hot
  loops;
* :mod:`repro.observability.trace` — opt-in :class:`QueryTrace` span trees
  populated by ``IncompleteDatabase.execute(query, trace=True)`` and
  rendered by ``explain(..., analyze=True)``;
* :mod:`repro.observability.export` — text table, JSON lines, and
  Prometheus renderings of any registry snapshot.

The metric names and span naming scheme are documented in
``docs/observability.md``; ``docs/cost-model.md`` maps each cost-model term
to the counter that measures it.
"""

from repro.observability.export import (
    render_jsonl,
    render_prometheus,
    render_table,
)
from repro.observability.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    enabled,
    get_registry,
    observe,
    record,
    set_registry,
    suppressed,
    use_registry,
)
from repro.observability.trace import (
    QueryTrace,
    Span,
    activate,
    current_span,
    current_trace,
    trace_span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "NULL_REGISTRY",
    "QueryTrace",
    "Span",
    "activate",
    "current_span",
    "current_trace",
    "enabled",
    "get_registry",
    "observe",
    "record",
    "render_jsonl",
    "render_prometheus",
    "render_table",
    "set_registry",
    "suppressed",
    "trace_span",
    "use_registry",
]
