"""Always-on workload recording: what ran, with which plan, at what cost.

The metrics registry answers *how much* work the process has done; this
module answers *which queries* caused it.  A :class:`WorkloadRecorder`
keeps one normalized :class:`WorkloadRecord` per query executed through
:meth:`repro.core.engine.IncompleteDatabase.execute` /
:meth:`~repro.core.engine.IncompleteDatabase.execute_batch` and per
scatter-gather query on :class:`repro.shard.ShardedDatabase`, in a bounded
in-memory ring, optionally mirrored to a rotating JSONL sink for durable
history.  :meth:`WorkloadRecorder.summary` aggregates the ring into the
shape the workload-adaptive advisor consumes: per-attribute and
per-interval frequencies, plan mix, semantics mix, and latency
percentiles.

Like the metrics registry, the default recorder is a shared no-op
(:data:`NULL_RECORDER`), so the engine's hot path pays one attribute read
per query until an operator installs a real recorder with
:func:`set_recorder` / :func:`use_recorder`.  Recording is thread-safe:
the engine's batch fan-out and the shard worker pool record from worker
threads.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro import forksafe
from repro.observability.metrics import record as _record_metric
from repro.observability.slowlog import SlowQueryLog
from repro.observability.trace import QueryTrace

__all__ = [
    "NULL_RECORDER",
    "NullWorkloadRecorder",
    "RotatingJsonlSink",
    "WorkloadRecord",
    "WorkloadRecorder",
    "get_recorder",
    "set_recorder",
    "use_recorder",
    "workload_summary",
]

#: Counter prefixes copied from a query's span tree onto its record.  These
#: are the cost-model quantities the advisor (and the slow-query log) care
#: about; everything else on the trace stays trace-only.
_RECORD_COUNTER_PREFIXES = (
    "bitmap.", "wah.", "bbc.", "vafile.", "cache.",
)


@dataclass(frozen=True, slots=True)
class WorkloadRecord:
    """One normalized row of query history.

    ``intervals`` is the query's search key as ``(attribute, lo, hi)``
    triples in query order — hashable, JSON-friendly, and exactly the
    granularity the advisor's frequency tables need.  ``counters`` carries
    the cost-model counters attributed to this query's trace (empty when
    the query ran untraced).
    """

    ts: float
    source: str  # "engine" or "shard"
    batch: bool
    intervals: tuple[tuple[str, int, int], ...]
    semantics: str
    index: str
    kind: str
    matches: int
    elapsed_ns: int
    counters: Mapping[str, float] = field(default_factory=dict)
    shards_executed: int = 0
    shards_pruned: int = 0

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attributes the query constrained."""
        return tuple(attr for attr, _, _ in self.intervals)

    def as_dict(self) -> dict:
        """JSON-serializable form (one sink/JSONL line per record)."""
        return {
            "ts": self.ts,
            "source": self.source,
            "batch": self.batch,
            "intervals": [list(iv) for iv in self.intervals],
            "semantics": self.semantics,
            "index": self.index,
            "kind": self.kind,
            "matches": self.matches,
            "elapsed_ns": self.elapsed_ns,
            "counters": dict(self.counters),
            "shards_executed": self.shards_executed,
            "shards_pruned": self.shards_pruned,
        }


class RotatingJsonlSink:
    """Append-only JSONL file with size-based rotation.

    Writes one JSON object per record to ``path``; when the file would
    exceed ``max_bytes`` it is rotated to ``path.1`` (existing backups
    shifting to ``path.2`` … ``path.<backups>``, the oldest dropped), so a
    long-lived service keeps a bounded, recent, durable query history.
    Writes are serialized by an internal lock.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        max_bytes: int = 4 << 20,
        backups: int = 3,
    ):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        if backups < 0:
            raise ValueError(f"backups must be >= 0, got {backups}")
        self._path = os.fspath(path)
        self._max_bytes = max_bytes
        self._backups = backups
        self._lock = threading.Lock()
        self._handle = None
        self._size = 0
        forksafe.register(self)

    def _reset_after_fork(self) -> None:
        # Fresh lock, and abandon the inherited file object without
        # closing it: closing would flush any partial parent-side buffer
        # into the shared file from the child.  The child reopens (append
        # mode) on its next write.
        self._lock = threading.Lock()
        self._handle = None
        self._size = 0

    @property
    def path(self) -> str:
        """The active log file path."""
        return self._path

    def _open(self) -> None:
        self._handle = open(self._path, "a", encoding="utf-8")
        self._size = self._handle.tell()

    def _rotate(self) -> None:
        self._handle.close()
        self._handle = None
        if self._backups == 0:
            os.remove(self._path)
        else:
            for n in range(self._backups - 1, 0, -1):
                older = f"{self._path}.{n}"
                if os.path.exists(older):
                    os.replace(older, f"{self._path}.{n + 1}")
            os.replace(self._path, f"{self._path}.1")
        self._open()

    def write(self, record: WorkloadRecord) -> None:
        """Append one record as a JSON line, rotating when over budget."""
        line = json.dumps(record.as_dict(), sort_keys=True) + "\n"
        data_len = len(line.encode("utf-8"))
        with self._lock:
            if self._handle is None:
                self._open()
            if self._size and self._size + data_len > self._max_bytes:
                self._rotate()
                _record_metric("workload.sink_rotations")
            self._handle.write(line)
            self._handle.flush()
            self._size += data_len

    def close(self) -> None:
        """Close the active file handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "RotatingJsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class WorkloadRecorder:
    """Bounded ring of :class:`WorkloadRecord` plus optional sink/slow log.

    Parameters
    ----------
    capacity:
        Ring size; the summary and ``records()`` see the most recent
        ``capacity`` queries (the sink, if any, sees everything).
    sink:
        A :class:`RotatingJsonlSink` (or anything with ``write(record)``)
        receiving every record durably.
    slow_log:
        A :class:`~repro.observability.slowlog.SlowQueryLog`; when set,
        the engine force-builds a :class:`QueryTrace` for every recorded
        query (if the log wants traces) and the log keeps the N worst
        threshold-crossing queries with their span trees.
    """

    #: Checked by the engine before paying any recording cost.
    active = True

    def __init__(
        self,
        capacity: int = 4096,
        sink=None,
        slow_log: SlowQueryLog | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._ring: list[WorkloadRecord] = []
        self._next = 0  # ring write position once full
        self._total = 0
        self._lock = threading.Lock()
        self._sink = sink
        self.slow_log = slow_log
        forksafe.register(self)

    def _reset_after_fork(self) -> None:
        self._lock = threading.Lock()

    # -- engine-facing surface ---------------------------------------------

    @property
    def wants_trace(self) -> bool:
        """Whether queries should be force-traced for the slow-query log."""
        return self.slow_log is not None and self.slow_log.capture_traces

    def record_query(
        self,
        *,
        source: str,
        batch: bool,
        query,
        semantics,
        index: str,
        kind: str,
        matches: int,
        elapsed_ns: int,
        trace: QueryTrace | None = None,
        shards_executed: int = 0,
        shards_pruned: int = 0,
    ) -> WorkloadRecord:
        """Normalize one executed query into the ring (and sink/slow log)."""
        rec = WorkloadRecord(
            ts=time.time(),
            source=source,
            batch=batch,
            intervals=tuple(
                (name, interval.lo, interval.hi)
                for name, interval in query.items()
            ),
            semantics=getattr(semantics, "value", str(semantics)),
            index=index,
            kind=kind,
            matches=matches,
            elapsed_ns=elapsed_ns,
            counters=_trace_counters(trace),
            shards_executed=shards_executed,
            shards_pruned=shards_pruned,
        )
        with self._lock:
            if len(self._ring) < self._capacity:
                self._ring.append(rec)
            else:
                self._ring[self._next] = rec
                self._next = (self._next + 1) % self._capacity
            self._total += 1
        _record_metric("workload.records")
        if self._sink is not None:
            self._sink.write(rec)
        if self.slow_log is not None and self.slow_log.offer(rec, trace):
            _record_metric("workload.slow_queries")
        return rec

    # -- inspection ---------------------------------------------------------

    @property
    def total_recorded(self) -> int:
        """Queries recorded over the recorder's lifetime (ring may be smaller)."""
        return self._total

    def records(self) -> list[WorkloadRecord]:
        """The retained records, oldest first."""
        with self._lock:
            if len(self._ring) < self._capacity:
                return list(self._ring)
            return self._ring[self._next:] + self._ring[: self._next]

    def summary(self) -> dict:
        """Aggregate the ring into the advisor's input shape.

        Returns a JSON-serializable dict: total/window counts, per-attribute
        and per-``(attribute, lo, hi)`` frequencies, plan mix (per index and
        per kind), semantics and source mixes, and latency percentiles over
        the window.
        """
        records = self.records()
        attributes: dict[str, int] = {}
        intervals: dict[str, int] = {}
        by_index: dict[str, int] = {}
        by_kind: dict[str, int] = {}
        by_semantics: dict[str, int] = {}
        by_source: dict[str, int] = {}
        latencies: list[int] = []
        matches = 0
        for rec in records:
            for attr, lo, hi in rec.intervals:
                attributes[attr] = attributes.get(attr, 0) + 1
                key = f"{attr}[{lo},{hi}]"
                intervals[key] = intervals.get(key, 0) + 1
            by_index[rec.index] = by_index.get(rec.index, 0) + 1
            by_kind[rec.kind] = by_kind.get(rec.kind, 0) + 1
            by_semantics[rec.semantics] = by_semantics.get(rec.semantics, 0) + 1
            by_source[rec.source] = by_source.get(rec.source, 0) + 1
            latencies.append(rec.elapsed_ns)
            matches += rec.matches
        latencies.sort()
        return {
            "total_recorded": self.total_recorded,
            "window": len(records),
            "attributes": dict(sorted(attributes.items())),
            "intervals": dict(sorted(intervals.items())),
            "plan_mix": dict(sorted(by_index.items())),
            "kind_mix": dict(sorted(by_kind.items())),
            "semantics_mix": dict(sorted(by_semantics.items())),
            "source_mix": dict(sorted(by_source.items())),
            "matches": matches,
            "latency_ns": {
                "p50": _percentile(latencies, 0.50),
                "p90": _percentile(latencies, 0.90),
                "p99": _percentile(latencies, 0.99),
                "max": latencies[-1] if latencies else 0,
                "mean": (
                    sum(latencies) / len(latencies) if latencies else 0.0
                ),
            },
        }

    def clear(self) -> None:
        """Drop the ring (the lifetime total and the sink are untouched)."""
        with self._lock:
            self._ring.clear()
            self._next = 0

    def __repr__(self) -> str:
        return (
            f"WorkloadRecorder(window={len(self.records())}, "
            f"total={self.total_recorded}, "
            f"slow_log={self.slow_log is not None})"
        )


def _trace_counters(trace: QueryTrace | None) -> dict[str, float]:
    """Cost-model counters summed over a query's span tree."""
    if trace is None:
        return {}
    totals: dict[str, float] = {}
    for _, span in trace.root.walk():
        for name, value in span.metrics.items():
            if name.startswith(_RECORD_COUNTER_PREFIXES):
                totals[name] = totals.get(name, 0) + value
    return totals


def _percentile(sorted_values: Sequence[int], q: float) -> int:
    """Nearest-rank percentile of an ascending sequence (0 when empty)."""
    if not sorted_values:
        return 0
    rank = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[rank]


class NullWorkloadRecorder(WorkloadRecorder):
    """The default recorder: discards everything at one attribute read."""

    active = False

    def __init__(self):
        super().__init__(capacity=1)

    def record_query(self, **kwargs) -> None:  # type: ignore[override]
        return None


#: The process-default recorder; records vanish into it.
NULL_RECORDER = NullWorkloadRecorder()

_recorder: WorkloadRecorder = NULL_RECORDER


def get_recorder() -> WorkloadRecorder:
    """The currently installed workload recorder."""
    return _recorder


def set_recorder(recorder: WorkloadRecorder) -> WorkloadRecorder:
    """Install a recorder process-wide; returns the previous one."""
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


def workload_summary() -> dict:
    """The installed recorder's :meth:`~WorkloadRecorder.summary`.

    The advisor-facing convenience: callers don't need to hold the
    recorder to ask what the workload looked like.  Empty-shaped (all
    zeros) under the default :data:`NULL_RECORDER`.
    """
    return get_recorder().summary()


@contextmanager
def use_recorder(
    recorder: WorkloadRecorder | None = None,
) -> Iterator[WorkloadRecorder]:
    """Install a recorder (a fresh one by default) for the ``with`` body."""
    if recorder is None:
        recorder = WorkloadRecorder()
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
