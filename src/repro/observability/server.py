"""Live telemetry endpoint: a stdlib HTTP thread serving scrape routes.

:func:`start_telemetry_server` spins up a
:class:`http.server.ThreadingHTTPServer` on a daemon thread and serves
four routes off whatever registry/recorder are installed process-wide:

* ``/metrics`` — Prometheus text exposition of the installed
  :class:`~repro.observability.MetricsRegistry` snapshot;
* ``/healthz`` — liveness JSON (status, uptime, queries recorded);
* ``/varz`` — one JSON snapshot of every instrument plus process info
  (and, when a database object was handed to the server, its cache and
  index introspection);
* ``/workload`` — the workload recorder's aggregated summary, the most
  recent records, and the slow-query log's entries with rendered traces.

The server holds no query-path state of its own: scrapes read the same
registry and recorder the engine writes, which is exactly why those are
thread-safe.  ``python -m repro.experiments serve-metrics`` wraps this in
a runnable demo service.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.observability.export import render_prometheus
from repro.observability.metrics import get_registry, record
from repro.observability.workload import get_recorder

__all__ = ["TelemetryServer", "start_telemetry_server"]

#: Routes served; anything else is a 404.
_ROUTES = ("/metrics", "/healthz", "/varz", "/workload")

#: How many of the most recent workload records ``/workload`` inlines.
_RECENT_RECORDS = 50


class _TelemetryHTTPServer(ThreadingHTTPServer):
    # Tests and smoke jobs restart endpoints rapidly; SO_REUSEADDR keeps a
    # lingering TIME_WAIT socket from failing the bind.  Explicit (rather
    # than inherited) so the policy is shared verbatim with the query
    # service's HTTP server.
    allow_reuse_address = True
    daemon_threads = True


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes one scrape; the owning :class:`TelemetryServer` is on the server."""

    server_version = "repro-telemetry/1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # scrapes must not spam the service's stdout

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        telemetry: TelemetryServer = self.server.telemetry
        path = self.path.split("?", 1)[0].rstrip("/") or "/healthz"
        record("telemetry.requests")
        if path == "/metrics":
            record("telemetry.requests.metrics")
            body = render_prometheus(
                get_registry().snapshot(), prefix=telemetry.prefix
            )
            self._reply(body, "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/healthz":
            record("telemetry.requests.healthz")
            self._reply_json(telemetry.health())
        elif path == "/varz":
            record("telemetry.requests.varz")
            self._reply_json(telemetry.varz())
        elif path == "/workload":
            record("telemetry.requests.workload")
            self._reply_json(telemetry.workload())
        else:
            record("telemetry.requests.unknown")
            self._reply(
                f"404: unknown route {path!r}; try {', '.join(_ROUTES)}\n",
                "text/plain; charset=utf-8",
                status=404,
            )

    def _reply_json(self, payload: dict) -> None:
        self._reply(
            json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
            "application/json; charset=utf-8",
        )

    def _reply(self, body: str, content_type: str, status: int = 200) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class TelemetryServer:
    """A running telemetry endpoint (see module docstring).

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port`).
    database:
        Optional engine or sharded database; when given, ``/varz`` includes
        its cache stats and index names under ``"database"``.
    prefix:
        Prometheus metric-name prefix for ``/metrics``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        database=None,
        prefix: str = "repro",
    ):
        self.prefix = prefix
        self.database = database
        self.started_at = time.time()
        self._httpd = _TelemetryHTTPServer((host, port), _TelemetryHandler)
        self._httpd.telemetry = self
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        """Bound host."""
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (resolved when the server was created with port 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running endpoint."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        """Start serving on a daemon thread (idempotent); returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-telemetry",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the endpoint down and join its thread (idempotent)."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- route payloads ----------------------------------------------------

    def health(self) -> dict:
        """The ``/healthz`` payload."""
        return {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "queries_recorded": get_recorder().total_recorded,
        }

    def varz(self) -> dict:
        """The ``/varz`` payload: process info plus the full snapshot."""
        import os
        import platform

        from repro.bitvector.kernels import get_backend

        snapshot = get_registry().snapshot()
        payload = {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "pid": os.getpid(),
            "python": platform.python_version(),
            "bitvector_backend": get_backend().name,
            "counters": dict(snapshot.counters),
            "gauges": dict(snapshot.gauges),
            "histograms": {
                name: {
                    "count": hist.count,
                    "sum": hist.total,
                    "min": hist.min,
                    "max": hist.max,
                    "mean": hist.mean,
                    "p50": hist.p50,
                    "p99": hist.p99,
                }
                for name, hist in snapshot.histograms.items()
            },
        }
        database = self.database
        if database is not None:
            info: dict = {"records": database.table.num_records}
            cache_stats = getattr(database, "cache_stats", None)
            if callable(cache_stats):
                info["cache"] = cache_stats().as_dict()
            else:
                info["cache"] = database.sub_result_cache.stats().as_dict()
            info["indexes"] = list(database.index_names)
            num_shards = getattr(database, "num_shards", None)
            if num_shards is not None:
                info["shards"] = num_shards
            payload["database"] = info
        return payload

    def workload(self) -> dict:
        """The ``/workload`` payload: summary, recent records, slow queries."""
        recorder = get_recorder()
        recent = recorder.records()[-_RECENT_RECORDS:]
        slow_log = recorder.slow_log
        return {
            "summary": recorder.summary(),
            "recent": [rec.as_dict() for rec in recent],
            "slow_queries": (
                [entry.as_dict() for entry in slow_log.entries()]
                if slow_log is not None
                else []
            ),
            "slow_query_threshold_ms": (
                slow_log.threshold_ns / 1e6 if slow_log is not None else None
            ),
        }


def start_telemetry_server(
    host: str = "127.0.0.1",
    port: int = 0,
    database=None,
    prefix: str = "repro",
) -> TelemetryServer:
    """Create and start a :class:`TelemetryServer`; returns it running."""
    return TelemetryServer(
        host=host, port=port, database=database, prefix=prefix
    ).start()
