"""Query model: intervals, range queries, and missing-data semantics.

The paper (Section 3) defines retrieval over a ``k``-dimensional search key
where each attribute in the key carries an interval ``v1 <= A_i <= v2`` with
``1 <= v1 <= v2 <= C_i``.  A *point query* is a range query whose bounds
coincide on every attribute.

Two query semantics are defined for incomplete data:

* :attr:`MissingSemantics.IS_MATCH` — a tuple matches when every search-key
  attribute is either missing or falls inside its interval.
* :attr:`MissingSemantics.NOT_MATCH` — a tuple matches only when every
  search-key attribute is present *and* falls inside its interval.

The two semantics are the poles of the three-valued (certain, possible)
answer model — ``NOT_MATCH`` computes the *certain* answers, ``IS_MATCH``
the *possible* answers — and :data:`BOTH` requests both bounds in one
pass (see ``docs/semantics.md``).  :func:`resolve_semantics` normalizes
user-facing spellings (enum members or the strings ``"is_match"``,
``"not_match"``, ``"both"``) into either a :class:`MissingSemantics`
member or the :data:`BOTH` sentinel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import DomainError, QueryError


class MissingSemantics(enum.Enum):
    """How missing attribute values interact with a query interval."""

    #: A missing value counts as satisfying any interval on that attribute.
    IS_MATCH = "is_match"
    #: A missing value disqualifies the record for that attribute.
    NOT_MATCH = "not_match"

    @property
    def opposite(self) -> "MissingSemantics":
        """The other bound of the (certain, possible) pair.

        Negation crosses bounds — ``certain(¬p) = ¬possible(p)`` and
        ``possible(¬p) = ¬certain(p)`` — so evaluating ``Not`` under one
        semantics requires the child under the opposite one.
        """
        if self is MissingSemantics.IS_MATCH:
            return MissingSemantics.NOT_MATCH
        return MissingSemantics.IS_MATCH


class ThreeValued(enum.Enum):
    """Sentinel type requesting both bounds of the three-valued answer.

    A single-member enum (rather than a bare ``object()``) so the sentinel
    survives pickling — shard tasks carry the requested semantics to
    process-based executors, and enum members unpickle to the *same*
    object, keeping ``is BOTH`` checks valid on the far side.
    """

    BOTH = "both"


#: Request a one-pass ``(certain, possible)`` evaluation.
BOTH = ThreeValued.BOTH


def resolve_semantics(
    value: "MissingSemantics | ThreeValued | str | None",
) -> "MissingSemantics | ThreeValued":
    """Normalize a user-facing semantics spelling.

    Accepts enum members, their string values (``"is_match"``,
    ``"not_match"``, ``"both"``), and ``None`` (the legacy default,
    ``IS_MATCH``).  Raises :class:`~repro.errors.QueryError` on anything
    else so serving layers can map it to a 400.
    """
    if value is None:
        return MissingSemantics.IS_MATCH
    if isinstance(value, (MissingSemantics, ThreeValued)):
        return value
    if isinstance(value, str):
        if value == ThreeValued.BOTH.value:
            return BOTH
        try:
            return MissingSemantics(value)
        except ValueError:
            pass
    raise QueryError(
        f"unknown semantics {value!r}; expected one of "
        f"'is_match', 'not_match', 'both'"
    )


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed interval ``lo <= A <= hi`` over an attribute's domain.

    Bounds are inclusive and 1-based, matching the paper's convention that
    attribute domains are the integers ``1..C``.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 1:
            raise DomainError(f"interval lower bound must be >= 1, got {self.lo}")
        if self.hi < self.lo:
            raise DomainError(
                f"interval upper bound {self.hi} is below lower bound {self.lo}"
            )

    @property
    def is_point(self) -> bool:
        """Whether this interval selects a single value."""
        return self.lo == self.hi

    @property
    def width(self) -> int:
        """Number of domain values covered by the interval."""
        return self.hi - self.lo + 1

    def contains(self, value: int) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lo <= value <= self.hi

    def selectivity(self, cardinality: int) -> float:
        """Attribute selectivity ``AS = (v2 - v1 + 1) / C`` from the paper."""
        if cardinality < self.hi:
            raise DomainError(
                f"interval {self} exceeds attribute cardinality {cardinality}"
            )
        return self.width / cardinality

    def __str__(self) -> str:
        if self.is_point:
            return f"= {self.lo}"
        return f"in [{self.lo}, {self.hi}]"


class RangeQuery:
    """A conjunctive multi-attribute range query.

    Maps attribute names to :class:`Interval` constraints.  All constraints
    are ANDed: a record answers the query when every constrained attribute
    satisfies its interval under the chosen :class:`MissingSemantics`.

    Parameters
    ----------
    intervals:
        Mapping from attribute name to the interval constraining it.  Must be
        non-empty.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Mapping[str, Interval]):
        if not intervals:
            raise QueryError("a range query requires at least one interval")
        self._intervals: dict[str, Interval] = dict(intervals)

    @classmethod
    def from_bounds(cls, bounds: Mapping[str, tuple[int, int]]) -> "RangeQuery":
        """Build a query from ``{attribute: (lo, hi)}`` pairs."""
        return cls({name: Interval(lo, hi) for name, (lo, hi) in bounds.items()})

    @classmethod
    def point(cls, values: Mapping[str, int]) -> "RangeQuery":
        """Build a point query from ``{attribute: value}`` pairs."""
        return cls({name: Interval(v, v) for name, v in values.items()})

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attributes named in the search key, in insertion order."""
        return tuple(self._intervals)

    @property
    def dimensionality(self) -> int:
        """Number of attributes in the search key (the paper's ``k``)."""
        return len(self._intervals)

    @property
    def is_point(self) -> bool:
        """Whether every interval selects a single value."""
        return all(iv.is_point for iv in self._intervals.values())

    def interval(self, attribute: str) -> Interval:
        """The interval constraining ``attribute``."""
        try:
            return self._intervals[attribute]
        except KeyError:
            raise QueryError(f"query does not constrain attribute {attribute!r}")

    def items(self) -> Iterator[tuple[str, Interval]]:
        """Iterate ``(attribute, interval)`` pairs."""
        return iter(self._intervals.items())

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._intervals

    def __len__(self) -> int:
        return len(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeQuery):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._intervals.items())))

    def __repr__(self) -> str:
        parts = ", ".join(f"{name} {iv}" for name, iv in self._intervals.items())
        return f"RangeQuery({parts})"
