"""Brute-force query evaluation: the correctness oracle for every index.

Evaluates a :class:`~repro.query.model.RangeQuery` directly over the coded
columns of an :class:`~repro.dataset.table.IncompleteTable`, implementing the
paper's Section 3 answer definitions verbatim:

* missing-is-a-match: ``t`` answers ``Q`` iff every search-key attribute of
  ``t`` is missing or falls in its interval;
* missing-is-not-a-match: ``t`` answers ``Q`` iff every search-key attribute
  of ``t`` is present and falls in its interval.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.schema import MISSING
from repro.dataset.table import IncompleteTable
from repro.errors import DomainError, QueryError
from repro.query.model import MissingSemantics, RangeQuery


def validate_query(table: IncompleteTable, query: RangeQuery) -> None:
    """Check that every query interval fits its attribute's domain."""
    for name, interval in query.items():
        if name not in table.schema:
            raise QueryError(f"query names unknown attribute {name!r}")
        cardinality = table.schema.cardinality(name)
        if interval.hi > cardinality:
            raise DomainError(
                f"interval {interval} exceeds domain 1..{cardinality} "
                f"of attribute {name!r}"
            )


def evaluate_mask(
    table: IncompleteTable,
    query: RangeQuery,
    semantics: MissingSemantics,
) -> np.ndarray:
    """Boolean answer mask over all records, by direct column comparison."""
    validate_query(table, query)
    result = np.ones(table.num_records, dtype=bool)
    for name, interval in query.items():
        column = table.column(name)
        in_range = (column >= interval.lo) & (column <= interval.hi)
        if semantics is MissingSemantics.IS_MATCH:
            in_range |= column == MISSING
        result &= in_range
    return result


def evaluate_mask_both(
    table: IncompleteTable,
    query: RangeQuery,
) -> tuple[np.ndarray, np.ndarray]:
    """One-pass ``(certain, possible)`` answer masks over all records.

    Shares the per-attribute in-range scan between the two bounds: the
    certain bound requires the value present and in range, the possible
    bound additionally admits missing values.  For a conjunctive query the
    certain mask is always a subset of the possible mask.
    """
    validate_query(table, query)
    certain = np.ones(table.num_records, dtype=bool)
    possible = np.ones(table.num_records, dtype=bool)
    for name, interval in query.items():
        column = table.column(name)
        in_range = (column >= interval.lo) & (column <= interval.hi)
        certain &= in_range
        possible &= in_range | (column == MISSING)
    return certain, possible


def evaluate(
    table: IncompleteTable,
    query: RangeQuery,
    semantics: MissingSemantics,
) -> np.ndarray:
    """Sorted array of matching record ids."""
    return np.flatnonzero(evaluate_mask(table, query, semantics))


def selectivity(
    table: IncompleteTable,
    query: RangeQuery,
    semantics: MissingSemantics,
) -> float:
    """Observed global selectivity of ``query`` over ``table``."""
    if table.num_records == 0:
        return 0.0
    return float(evaluate_mask(table, query, semantics).mean())
