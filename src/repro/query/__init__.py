"""Query model, boolean predicates, ground truth, and workload generation."""

from repro.query.boolean import (
    And,
    Atom,
    Not,
    Or,
    Predicate,
    evaluate_predicate,
    evaluate_predicate_both,
    evaluate_predicate_mask,
    evaluate_predicate_mask_both,
    from_range_query,
)
from repro.query.ground_truth import (
    evaluate,
    evaluate_mask,
    evaluate_mask_both,
    selectivity,
    validate_query,
)
from repro.query.model import (
    BOTH,
    Interval,
    MissingSemantics,
    RangeQuery,
    ThreeValued,
    resolve_semantics,
)
from repro.query.workload import (
    WorkloadGenerator,
    attribute_selectivity_for,
    expected_global_selectivity,
)

__all__ = [
    "And",
    "Atom",
    "BOTH",
    "Interval",
    "MissingSemantics",
    "Not",
    "Or",
    "Predicate",
    "RangeQuery",
    "ThreeValued",
    "evaluate_predicate",
    "evaluate_predicate_both",
    "evaluate_predicate_mask",
    "evaluate_predicate_mask_both",
    "from_range_query",
    "resolve_semantics",
    "WorkloadGenerator",
    "attribute_selectivity_for",
    "evaluate",
    "evaluate_mask",
    "evaluate_mask_both",
    "expected_global_selectivity",
    "selectivity",
    "validate_query",
]
