"""Query model, boolean predicates, ground truth, and workload generation."""

from repro.query.boolean import (
    And,
    Atom,
    Not,
    Or,
    Predicate,
    evaluate_predicate,
    evaluate_predicate_mask,
    from_range_query,
)
from repro.query.ground_truth import evaluate, evaluate_mask, selectivity, validate_query
from repro.query.model import Interval, MissingSemantics, RangeQuery
from repro.query.workload import (
    WorkloadGenerator,
    attribute_selectivity_for,
    expected_global_selectivity,
)

__all__ = [
    "And",
    "Atom",
    "Interval",
    "MissingSemantics",
    "Not",
    "Or",
    "Predicate",
    "RangeQuery",
    "evaluate_predicate",
    "evaluate_predicate_mask",
    "from_range_query",
    "WorkloadGenerator",
    "attribute_selectivity_for",
    "evaluate",
    "evaluate_mask",
    "expected_global_selectivity",
    "selectivity",
    "validate_query",
]
