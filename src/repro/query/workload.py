"""Selectivity-controlled query workload generation (Section 5.3).

The paper controls *global selectivity* (GS) — the fraction of records a
query matches — through the relation::

    GS = prod_{i=1..k} ((1 - Pm_i) * AS_i + Pm_i)        (missing is a match)

where ``AS_i = (v2 - v1 + 1) / C_i`` is the attribute selectivity and
``Pm_i`` the attribute's missing fraction.  Assuming equal attribute
selectivity across the ``k`` query attributes, the per-attribute selectivity
solves to::

    AS = (GS**(1/k) - Pm) / (1 - Pm)                     (missing is a match)
    AS = GS**(1/k) / (1 - Pm)                            (missing not a match)

As the paper notes, the granularity of AS is limited by the cardinality, so
achieved selectivity can drift from the target (they observe up to 3% against
a 1% target).  :func:`attribute_selectivity_for` clamps AS into
``[1/C, 1]``; callers can check the achieved value via the ground truth.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.dataset.table import IncompleteTable
from repro.errors import QueryError
from repro.query.model import Interval, MissingSemantics, RangeQuery


def expected_global_selectivity(
    attribute_selectivities: Sequence[float],
    missing_fractions: Sequence[float],
    semantics: MissingSemantics = MissingSemantics.IS_MATCH,
) -> float:
    """The paper's GS formula for given per-attribute AS and Pm values."""
    if len(attribute_selectivities) != len(missing_fractions):
        raise QueryError("AS and Pm sequences must have equal length")
    gs = 1.0
    for attr_sel, pm in zip(attribute_selectivities, missing_fractions):
        if semantics is MissingSemantics.IS_MATCH:
            gs *= (1.0 - pm) * attr_sel + pm
        else:
            gs *= (1.0 - pm) * attr_sel
    return gs


def attribute_selectivity_for(
    global_selectivity: float,
    dimensionality: int,
    missing_fraction: float,
    cardinality: int,
    semantics: MissingSemantics = MissingSemantics.IS_MATCH,
) -> float:
    """Invert the GS formula for equal AS, clamped to the feasible range.

    The smallest expressible attribute selectivity is one domain value,
    ``1/C``; the largest is 1.  When the target GS is unreachable (for
    example GS below ``Pm**k`` under missing-is-a-match), the clamp yields
    the nearest feasible point query.
    """
    if not 0.0 < global_selectivity <= 1.0:
        raise QueryError(f"global selectivity must be in (0, 1], got {global_selectivity}")
    if dimensionality < 1:
        raise QueryError(f"dimensionality must be >= 1, got {dimensionality}")
    per_dim = global_selectivity ** (1.0 / dimensionality)
    if semantics is MissingSemantics.IS_MATCH:
        attr_sel = (per_dim - missing_fraction) / (1.0 - missing_fraction)
    else:
        attr_sel = per_dim / (1.0 - missing_fraction)
    return float(min(1.0, max(1.0 / cardinality, attr_sel)))


class WorkloadGenerator:
    """Generates range-query workloads with a target global selectivity.

    Parameters
    ----------
    table:
        The table queries will run against; supplies cardinalities and
        observed missing fractions.
    seed:
        Seed for deterministic query generation.
    """

    def __init__(self, table: IncompleteTable, seed: int = 0):
        self._table = table
        self._rng = np.random.default_rng(seed)

    def interval_for(
        self,
        attribute: str,
        attribute_selectivity: float,
    ) -> Interval:
        """A uniformly placed interval of width ``round(AS * C)`` (>= 1)."""
        cardinality = self._table.schema.cardinality(attribute)
        width = max(1, min(cardinality, round(attribute_selectivity * cardinality)))
        lo = int(self._rng.integers(1, cardinality - width + 2))
        return Interval(lo, lo + width - 1)

    def query(
        self,
        attributes: Iterable[str],
        global_selectivity: float,
        semantics: MissingSemantics = MissingSemantics.IS_MATCH,
    ) -> RangeQuery:
        """One query over ``attributes`` targeting ``global_selectivity``."""
        attributes = list(attributes)
        if not attributes:
            raise QueryError("workload query requires at least one attribute")
        intervals = {}
        for name in attributes:
            attr_sel = attribute_selectivity_for(
                global_selectivity,
                len(attributes),
                self._table.missing_fraction(name),
                self._table.schema.cardinality(name),
                semantics,
            )
            intervals[name] = self.interval_for(name, attr_sel)
        return RangeQuery(intervals)

    def workload(
        self,
        attributes: Iterable[str],
        global_selectivity: float,
        num_queries: int,
        semantics: MissingSemantics = MissingSemantics.IS_MATCH,
    ) -> list[RangeQuery]:
        """A list of ``num_queries`` queries with the same target GS."""
        attributes = list(attributes)
        return [
            self.query(attributes, global_selectivity, semantics)
            for _ in range(num_queries)
        ]

    def point_queries(
        self,
        attributes: Iterable[str],
        num_queries: int,
    ) -> list[RangeQuery]:
        """Point queries with uniformly random values per attribute."""
        attributes = list(attributes)
        queries = []
        for _ in range(num_queries):
            values = {
                name: int(
                    self._rng.integers(1, self._table.schema.cardinality(name) + 1)
                )
                for name in attributes
            }
            queries.append(RangeQuery.point(values))
        return queries
