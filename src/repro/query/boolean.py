"""Boolean predicate trees over interval atoms (library extension).

The paper formalizes conjunctive range queries only, but the bit-wise
machinery it builds on (Section 4.1: "OR, XOR, AND and NOT are commonly
used") evaluates arbitrary boolean combinations for free.  This module adds
a small predicate algebra:

* :class:`Atom` — one interval constraint on one attribute;
* :class:`And` / :class:`Or` / :class:`Not` — combinators.

**Missing-data semantics are compositional over atoms**: each atom first
resolves to its record set under the chosen
:class:`~repro.query.model.MissingSemantics` (exactly as in the paper), and
the combinators are ordinary set operations on those results.  In
particular ``Not(atom)`` is the complement of the atom's match set — under
missing-is-a-match a record with a missing value satisfies the atom, so it
does *not* satisfy the negation.  This keeps every execution engine (oracle
scan, bitmap indexes, VA-file) trivially consistent.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import QueryError
from repro.query.model import Interval, MissingSemantics, RangeQuery


class Predicate(abc.ABC):
    """A boolean predicate over a table's attributes."""

    @abc.abstractmethod
    def attributes(self) -> frozenset[str]:
        """Attributes referenced anywhere in the predicate tree."""

    @abc.abstractmethod
    def atoms(self) -> Iterator["Atom"]:
        """All interval atoms in the tree."""

    def __and__(self, other: "Predicate") -> "And":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Atom(Predicate):
    """An interval constraint ``lo <= attribute <= hi``."""

    attribute: str
    interval: Interval

    @classmethod
    def of(cls, attribute: str, lo: int, hi: int | None = None) -> "Atom":
        """Convenience constructor; ``hi`` defaults to ``lo`` (point atom)."""
        return cls(attribute, Interval(lo, lo if hi is None else hi))

    def attributes(self) -> frozenset[str]:
        return frozenset((self.attribute,))

    def atoms(self) -> Iterator["Atom"]:
        yield self

    def __repr__(self) -> str:
        return f"Atom({self.attribute} {self.interval})"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of child predicates."""

    children: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise QueryError("And requires at least one child")

    def attributes(self) -> frozenset[str]:
        return frozenset().union(*(c.attributes() for c in self.children))

    def atoms(self) -> Iterator[Atom]:
        for child in self.children:
            yield from child.atoms()


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of child predicates."""

    children: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise QueryError("Or requires at least one child")

    def attributes(self) -> frozenset[str]:
        return frozenset().union(*(c.attributes() for c in self.children))

    def atoms(self) -> Iterator[Atom]:
        for child in self.children:
            yield from child.atoms()


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a child predicate (set complement of its matches)."""

    child: Predicate

    def attributes(self) -> frozenset[str]:
        return self.child.attributes()

    def atoms(self) -> Iterator[Atom]:
        yield from self.child.atoms()


def from_range_query(query: RangeQuery) -> Predicate:
    """The predicate equivalent of a conjunctive range query."""
    atoms = [Atom(name, interval) for name, interval in query.items()]
    if len(atoms) == 1:
        return atoms[0]
    return And(tuple(atoms))


# -- oracle evaluation ----------------------------------------------------------

def evaluate_predicate_mask(
    table,
    predicate: Predicate,
    semantics: MissingSemantics,
) -> np.ndarray:
    """Ground-truth boolean mask for a predicate via direct column scans."""
    if isinstance(predicate, Atom):
        column = table.column(predicate.attribute)
        cardinality = table.schema.cardinality(predicate.attribute)
        if predicate.interval.hi > cardinality:
            from repro.errors import DomainError

            raise DomainError(
                f"interval {predicate.interval} exceeds domain "
                f"1..{cardinality} of attribute {predicate.attribute!r}"
            )
        mask = (column >= predicate.interval.lo) & (
            column <= predicate.interval.hi
        )
        if semantics is MissingSemantics.IS_MATCH:
            mask |= column == 0
        return mask
    if isinstance(predicate, And):
        masks = [
            evaluate_predicate_mask(table, child, semantics)
            for child in predicate.children
        ]
        return np.logical_and.reduce(masks)
    if isinstance(predicate, Or):
        masks = [
            evaluate_predicate_mask(table, child, semantics)
            for child in predicate.children
        ]
        return np.logical_or.reduce(masks)
    if isinstance(predicate, Not):
        return ~evaluate_predicate_mask(table, predicate.child, semantics)
    raise QueryError(f"unknown predicate type {type(predicate).__name__}")


def evaluate_predicate(
    table,
    predicate: Predicate,
    semantics: MissingSemantics,
) -> np.ndarray:
    """Sorted matching record ids for a predicate (ground truth)."""
    return np.flatnonzero(evaluate_predicate_mask(table, predicate, semantics))


# -- index execution -------------------------------------------------------------

def execute_on_bitmap_index(
    index,
    predicate: Predicate,
    semantics: MissingSemantics,
    counter=None,
):
    """Evaluate a predicate tree on any bitmap index; returns a bitvector.

    Atoms go through the index's paper-faithful interval evaluation; the
    combinators become the corresponding bitvector operations.
    """
    if isinstance(predicate, Atom):
        return index.evaluate_interval(
            predicate.attribute, predicate.interval, semantics, counter
        )
    if isinstance(predicate, (And, Or)):
        results = [
            execute_on_bitmap_index(index, child, semantics, counter)
            for child in predicate.children
        ]
        combined = results[0]
        for nxt in results[1:]:
            if counter is not None:
                counter.record_binary(combined, nxt)
            combined = (combined & nxt) if isinstance(predicate, And) else (
                combined | nxt
            )
        return combined
    if isinstance(predicate, Not):
        inner = execute_on_bitmap_index(index, predicate.child, semantics, counter)
        if counter is not None:
            counter.record_not(inner)
        return ~inner
    raise QueryError(f"unknown predicate type {type(predicate).__name__}")


def execute_on_vafile(
    vafile,
    predicate: Predicate,
    semantics: MissingSemantics,
    stats=None,
) -> np.ndarray:
    """Evaluate a predicate tree on a VA-file; returns a boolean mask.

    Each atom runs the full scan-and-refine pipeline (so the result is
    exact), then the combinators merge the per-atom masks.
    """
    if isinstance(predicate, Atom):
        query = RangeQuery({predicate.attribute: predicate.interval})
        ids = vafile.execute_ids(query, semantics, stats)
        mask = np.zeros(vafile.num_records, dtype=bool)
        mask[ids] = True
        return mask
    if isinstance(predicate, And):
        masks = [
            execute_on_vafile(vafile, child, semantics, stats)
            for child in predicate.children
        ]
        return np.logical_and.reduce(masks)
    if isinstance(predicate, Or):
        masks = [
            execute_on_vafile(vafile, child, semantics, stats)
            for child in predicate.children
        ]
        return np.logical_or.reduce(masks)
    if isinstance(predicate, Not):
        return ~execute_on_vafile(vafile, predicate.child, semantics, stats)
    raise QueryError(f"unknown predicate type {type(predicate).__name__}")
