"""Boolean predicate trees over interval atoms (library extension).

The paper formalizes conjunctive range queries only, but the bit-wise
machinery it builds on (Section 4.1: "OR, XOR, AND and NOT are commonly
used") evaluates arbitrary boolean combinations for free.  This module adds
a small predicate algebra:

* :class:`Atom` — one interval constraint on one attribute;
* :class:`And` / :class:`Or` / :class:`Not` — combinators.

**Negation crosses semantics bounds.**  The two
:class:`~repro.query.model.MissingSemantics` are the poles of the
three-valued answer model: ``NOT_MATCH`` computes the *certain* answers
(rows that match no matter what the missing values turn out to be) and
``IS_MATCH`` the *possible* answers (rows that could match for some
completion).  Under that reading a missing row satisfies neither ``p``
certainly nor ``¬p`` certainly, so ``Not`` obeys the bound-swap rule

    certain(¬p) = ¬possible(p)        possible(¬p) = ¬certain(p)

and evaluating ``Not(child)`` under one semantics complements the child
evaluated under the *opposite* semantics.  (Earlier revisions of this
module complemented within a single semantics — ``certain(¬p) was
¬certain(p)`` — which wrongly put every missing row in the certain answer
of ``¬p``; that behavior was a bug, not a contract, and is fixed here and
pinned by regression tests.)  ``And``/``Or`` remain ordinary set
operations bound-by-bound, which keeps every execution engine (oracle
scan, bitmap indexes, VA-file) consistent.

The ``*_both`` variants evaluate one predicate tree into its
``(certain, possible)`` pair in a single pass: each atom's two bitvectors
are derived together (possible = certain ∪ missing), combinators apply
pairwise, and ``Not`` swaps the bounds — see ``docs/semantics.md``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import QueryError
from repro.query.model import Interval, MissingSemantics, RangeQuery


class Predicate(abc.ABC):
    """A boolean predicate over a table's attributes."""

    @abc.abstractmethod
    def attributes(self) -> frozenset[str]:
        """Attributes referenced anywhere in the predicate tree."""

    @abc.abstractmethod
    def atoms(self) -> Iterator["Atom"]:
        """All interval atoms in the tree."""

    def __and__(self, other: "Predicate") -> "And":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class Atom(Predicate):
    """An interval constraint ``lo <= attribute <= hi``."""

    attribute: str
    interval: Interval

    @classmethod
    def of(cls, attribute: str, lo: int, hi: int | None = None) -> "Atom":
        """Convenience constructor; ``hi`` defaults to ``lo`` (point atom)."""
        return cls(attribute, Interval(lo, lo if hi is None else hi))

    def attributes(self) -> frozenset[str]:
        return frozenset((self.attribute,))

    def atoms(self) -> Iterator["Atom"]:
        yield self

    def __repr__(self) -> str:
        return f"Atom({self.attribute} {self.interval})"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of child predicates."""

    children: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise QueryError("And requires at least one child")

    def attributes(self) -> frozenset[str]:
        return frozenset().union(*(c.attributes() for c in self.children))

    def atoms(self) -> Iterator[Atom]:
        for child in self.children:
            yield from child.atoms()


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of child predicates."""

    children: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise QueryError("Or requires at least one child")

    def attributes(self) -> frozenset[str]:
        return frozenset().union(*(c.attributes() for c in self.children))

    def atoms(self) -> Iterator[Atom]:
        for child in self.children:
            yield from child.atoms()


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a child predicate (set complement of its matches)."""

    child: Predicate

    def attributes(self) -> frozenset[str]:
        return self.child.attributes()

    def atoms(self) -> Iterator[Atom]:
        yield from self.child.atoms()


def from_range_query(query: RangeQuery) -> Predicate:
    """The predicate equivalent of a conjunctive range query."""
    atoms = [Atom(name, interval) for name, interval in query.items()]
    if len(atoms) == 1:
        return atoms[0]
    return And(tuple(atoms))


# -- oracle evaluation ----------------------------------------------------------

def evaluate_predicate_mask(
    table,
    predicate: Predicate,
    semantics: MissingSemantics,
) -> np.ndarray:
    """Ground-truth boolean mask for a predicate via direct column scans."""
    if isinstance(predicate, Atom):
        column = table.column(predicate.attribute)
        cardinality = table.schema.cardinality(predicate.attribute)
        if predicate.interval.hi > cardinality:
            from repro.errors import DomainError

            raise DomainError(
                f"interval {predicate.interval} exceeds domain "
                f"1..{cardinality} of attribute {predicate.attribute!r}"
            )
        mask = (column >= predicate.interval.lo) & (
            column <= predicate.interval.hi
        )
        if semantics is MissingSemantics.IS_MATCH:
            mask |= column == 0
        return mask
    if isinstance(predicate, And):
        masks = [
            evaluate_predicate_mask(table, child, semantics)
            for child in predicate.children
        ]
        return np.logical_and.reduce(masks)
    if isinstance(predicate, Or):
        masks = [
            evaluate_predicate_mask(table, child, semantics)
            for child in predicate.children
        ]
        return np.logical_or.reduce(masks)
    if isinstance(predicate, Not):
        # Bound-swap rule: the child is evaluated under the opposite
        # semantics, so a missing row is in neither certain(p) nor
        # certain(¬p) but in both possible(p) and possible(¬p).
        return ~evaluate_predicate_mask(
            table, predicate.child, semantics.opposite
        )
    raise QueryError(f"unknown predicate type {type(predicate).__name__}")


def evaluate_predicate(
    table,
    predicate: Predicate,
    semantics: MissingSemantics,
) -> np.ndarray:
    """Sorted matching record ids for a predicate (ground truth)."""
    return np.flatnonzero(evaluate_predicate_mask(table, predicate, semantics))


def evaluate_predicate_mask_both(
    table,
    predicate: Predicate,
) -> tuple[np.ndarray, np.ndarray]:
    """One-pass ground-truth ``(certain, possible)`` mask pair.

    Each atom's in-range scan happens once; the possible bound adds the
    attribute's missing rows on top of it.  ``And``/``Or`` combine the
    bounds pairwise and ``Not`` swaps them.
    """
    if isinstance(predicate, Atom):
        column = table.column(predicate.attribute)
        cardinality = table.schema.cardinality(predicate.attribute)
        if predicate.interval.hi > cardinality:
            from repro.errors import DomainError

            raise DomainError(
                f"interval {predicate.interval} exceeds domain "
                f"1..{cardinality} of attribute {predicate.attribute!r}"
            )
        certain = (column >= predicate.interval.lo) & (
            column <= predicate.interval.hi
        )
        possible = certain | (column == 0)
        return certain, possible
    if isinstance(predicate, (And, Or)):
        pairs = [
            evaluate_predicate_mask_both(table, child)
            for child in predicate.children
        ]
        combine = np.logical_and if isinstance(predicate, And) else np.logical_or
        certain, possible = pairs[0]
        for next_certain, next_possible in pairs[1:]:
            certain = combine(certain, next_certain)
            possible = combine(possible, next_possible)
        return certain, possible
    if isinstance(predicate, Not):
        certain, possible = evaluate_predicate_mask_both(table, predicate.child)
        return ~possible, ~certain
    raise QueryError(f"unknown predicate type {type(predicate).__name__}")


def evaluate_predicate_both(
    table,
    predicate: Predicate,
) -> tuple[np.ndarray, np.ndarray]:
    """Sorted ``(certain_ids, possible_ids)`` for a predicate (ground truth)."""
    certain, possible = evaluate_predicate_mask_both(table, predicate)
    return np.flatnonzero(certain), np.flatnonzero(possible)


# -- index execution -------------------------------------------------------------

def execute_on_bitmap_index(
    index,
    predicate: Predicate,
    semantics: MissingSemantics,
    counter=None,
):
    """Evaluate a predicate tree on any bitmap index; returns a bitvector.

    Atoms go through the index's paper-faithful interval evaluation; the
    combinators become the corresponding bitvector operations.
    """
    if isinstance(predicate, Atom):
        return index.evaluate_interval(
            predicate.attribute, predicate.interval, semantics, counter
        )
    if isinstance(predicate, (And, Or)):
        results = [
            execute_on_bitmap_index(index, child, semantics, counter)
            for child in predicate.children
        ]
        combined = results[0]
        for nxt in results[1:]:
            if counter is not None:
                counter.record_binary(combined, nxt)
            combined = (combined & nxt) if isinstance(predicate, And) else (
                combined | nxt
            )
        return combined
    if isinstance(predicate, Not):
        # certain(¬p) = ¬possible(p) and vice versa: complement the child
        # evaluated under the opposite bound.
        inner = execute_on_bitmap_index(
            index, predicate.child, semantics.opposite, counter
        )
        if counter is not None:
            counter.record_not(inner)
        return ~inner
    raise QueryError(f"unknown predicate type {type(predicate).__name__}")


def execute_on_bitmap_index_both(
    index,
    predicate: Predicate,
    counter=None,
):
    """One-pass ``(certain, possible)`` bitvector pair on a bitmap index.

    Atoms go through :meth:`~repro.bitmap.base.BitmapIndex.evaluate_interval_both`
    so the expensive interval work (bitmap ORs / cumulative lookups) is
    shared between the two bounds; ``And``/``Or`` combine pairwise and
    ``Not`` swaps the bounds.
    """
    if isinstance(predicate, Atom):
        return index.evaluate_interval_both(
            predicate.attribute, predicate.interval, counter
        )
    if isinstance(predicate, (And, Or)):
        pairs = [
            execute_on_bitmap_index_both(index, child, counter)
            for child in predicate.children
        ]
        certain, possible = pairs[0]
        for next_certain, next_possible in pairs[1:]:
            if counter is not None:
                counter.record_binary(certain, next_certain)
                counter.record_binary(possible, next_possible)
            if isinstance(predicate, And):
                certain = certain & next_certain
                possible = possible & next_possible
            else:
                certain = certain | next_certain
                possible = possible | next_possible
        return certain, possible
    if isinstance(predicate, Not):
        certain, possible = execute_on_bitmap_index_both(
            index, predicate.child, counter
        )
        if counter is not None:
            counter.record_not(certain)
            counter.record_not(possible)
        return ~possible, ~certain
    raise QueryError(f"unknown predicate type {type(predicate).__name__}")


def execute_on_vafile(
    vafile,
    predicate: Predicate,
    semantics: MissingSemantics,
    stats=None,
) -> np.ndarray:
    """Evaluate a predicate tree on a VA-file; returns a boolean mask.

    Each atom runs the full scan-and-refine pipeline (so the result is
    exact), then the combinators merge the per-atom masks.
    """
    if isinstance(predicate, Atom):
        query = RangeQuery({predicate.attribute: predicate.interval})
        ids = vafile.execute_ids(query, semantics, stats)
        mask = np.zeros(vafile.num_records, dtype=bool)
        mask[ids] = True
        return mask
    if isinstance(predicate, And):
        masks = [
            execute_on_vafile(vafile, child, semantics, stats)
            for child in predicate.children
        ]
        return np.logical_and.reduce(masks)
    if isinstance(predicate, Or):
        masks = [
            execute_on_vafile(vafile, child, semantics, stats)
            for child in predicate.children
        ]
        return np.logical_or.reduce(masks)
    if isinstance(predicate, Not):
        # Same bound-swap as the other engines: negate the opposite bound.
        return ~execute_on_vafile(
            vafile, predicate.child, semantics.opposite, stats
        )
    raise QueryError(f"unknown predicate type {type(predicate).__name__}")


def execute_on_vafile_both(
    vafile,
    predicate: Predicate,
    stats=None,
) -> tuple[np.ndarray, np.ndarray]:
    """One-pass ``(certain, possible)`` boolean mask pair on a VA-file.

    Each atom runs the paired scan-and-refine once
    (:meth:`~repro.vafile.vafile.VAFile.execute_ids_both` shares the
    per-attribute approximation scan between bounds), then the combinators
    merge bound-by-bound with ``Not`` swapping the pair.
    """
    if isinstance(predicate, Atom):
        query = RangeQuery({predicate.attribute: predicate.interval})
        certain_ids, possible_ids = vafile.execute_ids_both(query, stats)
        certain = np.zeros(vafile.num_records, dtype=bool)
        certain[certain_ids] = True
        possible = np.zeros(vafile.num_records, dtype=bool)
        possible[possible_ids] = True
        return certain, possible
    if isinstance(predicate, (And, Or)):
        pairs = [
            execute_on_vafile_both(vafile, child, stats)
            for child in predicate.children
        ]
        combine = np.logical_and if isinstance(predicate, And) else np.logical_or
        certain, possible = pairs[0]
        for next_certain, next_possible in pairs[1:]:
            certain = combine(certain, next_certain)
            possible = combine(possible, next_possible)
        return certain, possible
    if isinstance(predicate, Not):
        certain, possible = execute_on_vafile_both(vafile, predicate.child, stats)
        return ~possible, ~certain
    raise QueryError(f"unknown predicate type {type(predicate).__name__}")
