"""Fork-safety for the library's long-lived locks.

CPython's ``fork`` clones the whole process, including every
``threading.Lock`` — in whatever state some *other* thread held it at the
instant of the fork.  A child that inherits a mid-held lock deadlocks the
first time it touches the instrument (the owning thread does not exist in
the child, so the lock is never released).  The objects at risk here are
the module-level singletons that threads mutate concurrently: the metrics
registry and its per-instrument locks, the sub-result caches, the workload
recorder's ring, and the JSONL sink.

Instead of banning ``fork`` (the process shard executor supports both
start methods, and ``fork`` is markedly cheaper on Linux), every such
object registers itself here; :func:`os.register_at_fork` replaces all
registered locks with fresh ones in the child, *after* the fork, before
user code runs.  Registration uses a ``WeakSet`` so caches and recorders
die normally.

The reset is deliberately lossy about in-flight state: a mutation that was
mid-critical-section in another thread at fork time may leave that one
update torn in the child (e.g. a counter bumped but its histogram not).
That is inherent to fork — the guarantee here is *no deadlock and no
corruption of the lock objects themselves*, which is what the process
shard executor needs.
"""

from __future__ import annotations

import os
import weakref

__all__ = ["register", "register_callback"]

#: Objects exposing ``_reset_after_fork()``; weakly held.
_RESETTABLE: weakref.WeakSet = weakref.WeakSet()

#: Module-level reset hooks (for globals that are not objects).
_CALLBACKS: list = []


def register(obj) -> None:
    """Track ``obj``; its ``_reset_after_fork()`` runs in fork children."""
    _RESETTABLE.add(obj)


def register_callback(callback) -> None:
    """Run ``callback()`` in every fork child (module-global resets)."""
    _CALLBACKS.append(callback)


def _reset_all() -> None:
    for callback in list(_CALLBACKS):
        callback()
    for obj in list(_RESETTABLE):
        obj._reset_after_fork()


if hasattr(os, "register_at_fork"):  # absent on Windows
    os.register_at_fork(after_in_child=_reset_all)
