"""Persist and restore a :class:`~repro.shard.ShardedDatabase`.

Layout on disk (all paths relative to the manifest's directory)::

    manifest.json           -- format tag, schema, shard + index catalog
    shard-0/rows.npy        -- global record ids owned by shard 0 (int64)
    shard-0/table.npz       -- shard 0's row slice (repro.dataset.io format)
    shard-0/<index>.idx     -- one file per attached index (repro.storage)
    shard-1/...

``manifest.json`` is the source of truth: it names the partitioner, the
full-table schema, and for every shard its row-id file, table file, and the
``(name, kind, attributes, file)`` of each serialized index.  Only the
serializable index kinds — the WAH/BBC bitmap encodings (``bee``, ``bre``,
``bie``) and ``vafile`` — can be persisted; other kinds raise
:class:`~repro.errors.ShardError` at save time so a manifest never goes out
half-written with silently dropped indexes.

Loading reverses the split exactly: shard tables and indexes are read back
as serialized (so indexes stay aligned with the rows they were built over),
and the full table is reconstructed by scattering each shard's columns
through its saved global row ids.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.core.cache import DEFAULT_CACHE_BYTES
from repro.dataset.io import load_table, save_table
from repro.dataset.schema import AttributeSpec, Schema
from repro.dataset.table import IncompleteTable
from repro.errors import ShardError
from repro.shard.partition import ShardAssignment
from repro.shard.sharded import ShardedDatabase
from repro.storage.serialize import (
    load_bitmap_index_file,
    load_vafile_file,
    save_bitmap_index,
    save_vafile,
)

__all__ = ["MANIFEST_NAME", "load_sharded", "save_sharded"]

MANIFEST_NAME = "manifest.json"
_FORMAT = "repro-shard-manifest"
_VERSION = 1

#: Index kinds the manifest can persist, mapped to their writers.
_BITMAP_KINDS = frozenset({"bee", "bre", "bie"})


def _shard_dir(shard_id: int) -> str:
    return f"shard-{shard_id}"


def save_sharded(db: ShardedDatabase, directory: str | os.PathLike) -> Path:
    """Write ``db`` (tables, row assignment, indexes) under ``directory``.

    Returns the manifest path.  The directory is created if needed; existing
    files are overwritten.  Raises :class:`ShardError` before writing
    anything if some attached index kind cannot be serialized.
    """
    root = Path(directory)
    for name in db.index_names:
        kind = db._index_meta[name].kind
        if kind not in _BITMAP_KINDS and kind != "vafile":
            raise ShardError(
                f"index {name!r} has kind {kind!r}, which cannot be "
                f"serialized; persistable kinds are "
                f"{sorted(_BITMAP_KINDS | {'vafile'})}"
            )
    root.mkdir(parents=True, exist_ok=True)
    shard_entries = []
    for shard in db.shards:
        subdir = root / _shard_dir(shard.shard_id)
        subdir.mkdir(exist_ok=True)
        rows_rel = f"{_shard_dir(shard.shard_id)}/rows.npy"
        table_rel = f"{_shard_dir(shard.shard_id)}/table.npz"
        np.save(root / rows_rel, shard.global_ids.astype(np.int64))
        save_table(shard.database.table, root / table_rel)
        index_entries = []
        for name in db.index_names:
            attached = shard.database.get_index(name)
            index_rel = f"{_shard_dir(shard.shard_id)}/{name}.idx"
            if attached.kind in _BITMAP_KINDS:
                save_bitmap_index(attached.index, root / index_rel)
            else:
                save_vafile(attached.index, root / index_rel)
            index_entries.append({
                "name": name,
                "kind": attached.kind,
                "attributes": list(attached.attributes),
                "file": index_rel,
            })
        shard_entries.append({
            "shard_id": shard.shard_id,
            "num_records": shard.database.table.num_records,
            "rows": rows_rel,
            "table": table_rel,
            "indexes": index_entries,
        })
    manifest = {
        "format": _FORMAT,
        "version": _VERSION,
        "num_records": db.num_records,
        "num_shards": db.num_shards,
        "partitioner": db.partitioner_name,
        "attributes": [
            {"name": spec.name, "cardinality": spec.cardinality}
            for spec in db.table.schema
        ],
        "shards": shard_entries,
    }
    manifest_path = root / MANIFEST_NAME
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
    return manifest_path


def load_sharded(
    directory: str | os.PathLike,
    parallel: bool = True,
    max_workers: int | None = None,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
) -> ShardedDatabase:
    """Rebuild a :class:`ShardedDatabase` saved by :func:`save_sharded`."""
    root = Path(directory)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise ShardError(f"no {MANIFEST_NAME} in {root}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise ShardError(f"{manifest_path} is not valid JSON: {exc}")
    if manifest.get("format") != _FORMAT:
        raise ShardError(
            f"{manifest_path}: unexpected format tag "
            f"{manifest.get('format')!r}"
        )
    if manifest.get("version") != _VERSION:
        raise ShardError(
            f"{manifest_path}: unsupported manifest version "
            f"{manifest.get('version')!r} (this build reads {_VERSION})"
        )
    num_records = int(manifest["num_records"])
    schema = Schema(
        AttributeSpec(entry["name"], int(entry["cardinality"]))
        for entry in manifest["attributes"]
    )
    entries = sorted(manifest["shards"], key=lambda e: e["shard_id"])
    rows_per_shard = []
    shard_tables = []
    for entry in entries:
        rows = np.load(root / entry["rows"]).astype(np.int64)
        shard_table = load_table(root / entry["table"])
        if len(rows) != shard_table.num_records:
            raise ShardError(
                f"shard {entry['shard_id']}: {len(rows)} row ids but "
                f"{shard_table.num_records} table rows"
            )
        if list(shard_table.schema.names) != [s.name for s in schema]:
            raise ShardError(
                f"shard {entry['shard_id']}: table schema disagrees with "
                f"the manifest"
            )
        rows_per_shard.append(rows)
        shard_tables.append(shard_table)
    assignment = ShardAssignment(
        partitioner=manifest["partitioner"],
        num_records=num_records,
        shards=tuple(rows_per_shard),
    )
    assignment.validate()
    # Reassemble the full table by scattering shard columns through their
    # global row ids; validate() above guarantees full coverage.
    columns = {}
    for spec in schema:
        full = np.zeros(num_records, dtype=np.int64)
        for rows, shard_table in zip(rows_per_shard, shard_tables):
            full[rows] = shard_table.column(spec.name)
        columns[spec.name] = full
    table = IncompleteTable(schema, columns)
    db = ShardedDatabase._restore(
        table,
        assignment,
        shard_tables,
        parallel=parallel,
        max_workers=max_workers,
        cache_bytes=cache_bytes,
    )
    for entry in entries:
        shard = db.shards[entry["shard_id"]]
        for index_entry in entry["indexes"]:
            kind = index_entry["kind"]
            path = root / index_entry["file"]
            if kind in _BITMAP_KINDS:
                index = load_bitmap_index_file(path)
            elif kind == "vafile":
                index = load_vafile_file(path, shard.database.table)
            else:
                raise ShardError(
                    f"manifest names unloadable index kind {kind!r}"
                )
            shard.database.attach_index(
                index_entry["name"],
                kind,
                index,
                attributes=index_entry["attributes"],
            )
    for entry in entries[:1]:
        for index_entry in entry["indexes"]:
            db._attach_shard_indexes(
                index_entry["name"],
                index_entry["kind"],
                index_entry["attributes"],
            )
    return db
