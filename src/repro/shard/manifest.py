"""Persist and restore a :class:`~repro.shard.ShardedDatabase`.

Layout on disk (all paths relative to the manifest's directory)::

    manifest.json                 -- format tag, schema, checksums, catalog
    gen-000001/shard-0/rows.npy   -- global record ids owned by shard 0
    gen-000001/shard-0/table.npz  -- shard 0's row slice (repro.dataset.io)
    gen-000001/shard-0/<name>.idx -- one file per attached index
    gen-000001/shard-1/...

``manifest.json`` is the source of truth: it names the partitioner, the
full-table schema, and for every shard its row-id file, table file, and the
``(name, kind, attributes, options, file)`` of each serialized index.  Only
the serializable index kinds — the WAH/BBC bitmap encodings (``bee``,
``bre``, ``bie``) and ``vafile`` — can be persisted; other kinds raise
:class:`~repro.errors.ShardError` at save time so a manifest never goes out
half-written with silently dropped indexes.

Crash safety and integrity (see ``docs/persistence.md``):

* every save writes into a **fresh generation directory** and commits by
  atomically replacing ``manifest.json`` last, so a crash at any point
  leaves the directory loadable as either the complete old state or the
  complete new state (stale generations are garbage-collected only after
  the commit);
* every file is written through the checksummed ``RPF1`` frame and its
  whole-file CRC32 and size are **recorded in the manifest**, which also
  carries a checksum over its own canonical JSON (``self_crc32``);
* saving over an existing sharded directory requires ``overwrite=True`` —
  refusing beats silently mixing shard files from two different saves;
* loading degrades gracefully: a corrupt or missing *index* file is
  reported (``storage.index_rebuilds`` counter + ``RuntimeWarning``) and
  the index is rebuilt from the shard table, while a corrupt *table* or
  *row-map* file is a hard :class:`~repro.errors.CorruptIndexError` naming
  the file and shard.

Loading reverses the split exactly: shard tables and indexes are read back
as serialized (so indexes stay aligned with the rows they were built over),
and the full table is reconstructed by scattering each shard's columns
through its saved global row ids.  Malformed manifests are rejected with
errors naming the offending shard: duplicate shard ids, global row ids
owned by nobody, and row ids claimed by two shards are all load errors.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import warnings
from pathlib import Path

import numpy as np

from repro.core.cache import DEFAULT_CACHE_BYTES
from repro.dataset.io import load_table, save_table
from repro.dataset.schema import AttributeSpec, Schema
from repro.dataset.table import IncompleteTable
from repro.errors import CorruptIndexError, ShardError
from repro.observability import record
from repro.shard.partition import ShardAssignment
from repro.shard.sharded import ShardedDatabase
from repro.storage import integrity
from repro.storage.integrity import crc32, file_crc32, parse_frame
from repro.storage.serialize import (
    load_bitmap_index_file,
    load_vafile_file,
    save_bitmap_index,
    save_vafile,
)

__all__ = ["MANIFEST_NAME", "load_sharded", "save_sharded"]

MANIFEST_NAME = "manifest.json"
_FORMAT = "repro-shard-manifest"
_VERSION = 2
_SUPPORTED_VERSIONS = frozenset({1, 2})

#: Index kinds the manifest can persist, mapped to their writers.
_BITMAP_KINDS = frozenset({"bee", "bre", "bie"})


def _shard_dir(shard_id: int) -> str:
    return f"shard-{shard_id}"


def _generation_dir(generation: int) -> str:
    return f"gen-{generation:06d}"


def _generation_of(name: str) -> int | None:
    """The generation number encoded in a ``gen-*`` directory name."""
    if not name.startswith("gen-"):
        return None
    try:
        return int(name[4:])
    except ValueError:
        return None


def _owned_entries(root: Path) -> list[Path]:
    """Subdirectories a previous :func:`save_sharded` may have created."""
    if not root.is_dir():
        return []
    owned = []
    for child in root.iterdir():
        if not child.is_dir():
            continue
        if _generation_of(child.name) is not None or (
            child.name.startswith("shard-")
            and child.name[6:].isdigit()
        ):
            owned.append(child)
    return owned


def manifest_text(manifest: dict) -> str:
    """Canonical manifest JSON with ``self_crc32`` stamped in.

    The checksum covers the canonical serialization of everything *except*
    the ``self_crc32`` field itself; :func:`load_sharded` and fsck recompute
    it the same way.
    """
    body = {k: v for k, v in manifest.items() if k != "self_crc32"}
    canonical = json.dumps(body, indent=2, sort_keys=True)
    signed = dict(body, self_crc32=crc32(canonical.encode("utf-8")))
    return json.dumps(signed, indent=2, sort_keys=True) + "\n"


def _file_record(root: Path, relative: str) -> dict:
    """Manifest record for a just-written file: path, CRC32, byte size."""
    checksum, nbytes = file_crc32(root / relative)
    return {"path": relative, "crc32": checksum, "bytes": nbytes}


def _file_fields(entry) -> tuple[str, int | None, int | None]:
    """``(path, crc32, bytes)`` from a v2 record or a bare v1 path string."""
    if isinstance(entry, str):
        return entry, None, None
    return entry["path"], entry.get("crc32"), entry.get("bytes")


def _index_options(attached) -> dict:
    """Constructor options needed to rebuild ``attached`` from its table."""
    if attached.kind in _BITMAP_KINDS:
        return {"codec": attached.index.codec}
    vafile = attached.index
    return {
        "quantization": vafile.quantization,
        "bits": {
            name: vafile.quantizer(name).bits for name in vafile.attributes
        },
    }


def save_sharded(
    db: ShardedDatabase,
    directory: str | os.PathLike,
    overwrite: bool = False,
    gc_stale: bool = True,
) -> Path:
    """Write ``db`` (tables, row assignment, indexes) under ``directory``.

    Returns the manifest path.  The directory is created if needed.  If it
    already holds a sharded database (or stray ``gen-*``/``shard-*``
    subdirectories from one), the save refuses with :class:`ShardError`
    unless ``overwrite=True``; with it, the new state is written into a
    fresh generation directory, committed by atomically replacing
    ``manifest.json``, and only then are the previous generation's files
    removed — so a crash mid-save always leaves the old state loadable.
    Raises :class:`ShardError` before writing anything if some attached
    index kind cannot be serialized.

    ``gc_stale=False`` leaves previous generation directories on disk after
    the commit.  The serving layer's :class:`~repro.serve.EpochManager`
    uses this: readers may still hold a pinned epoch whose engines mmap
    files in an older generation, so stale generations are garbage-collected
    only when their pin count drops to zero (orphans stay benign to both
    ``fsck`` and :func:`load_sharded`).
    """
    root = Path(directory)
    for name in db.index_names:
        kind = db._index_meta[name].kind
        if kind not in _BITMAP_KINDS and kind != "vafile":
            raise ShardError(
                f"index {name!r} has kind {kind!r}, which cannot be "
                f"serialized; persistable kinds are "
                f"{sorted(_BITMAP_KINDS | {'vafile'})}"
            )
    manifest_path = root / MANIFEST_NAME
    previous = _owned_entries(root)
    if (manifest_path.exists() or previous) and not overwrite:
        raise ShardError(
            f"{root} already holds a sharded database save; pass "
            f"overwrite=True to replace it"
        )
    generation = 1 + max(
        (gen for entry in previous
         if (gen := _generation_of(entry.name)) is not None),
        default=0,
    )
    gen_rel = _generation_dir(generation)
    root.mkdir(parents=True, exist_ok=True)
    shard_entries = []
    for shard in db.shards:
        subdir = root / gen_rel / _shard_dir(shard.shard_id)
        subdir.mkdir(parents=True, exist_ok=True)
        rows_rel = f"{gen_rel}/{_shard_dir(shard.shard_id)}/rows.npy"
        table_rel = f"{gen_rel}/{_shard_dir(shard.shard_id)}/table.npz"
        buffer = io.BytesIO()
        np.save(buffer, shard.global_ids.astype(np.int64))
        integrity.write_framed(root / rows_rel, [("rows", buffer.getvalue())])
        save_table(shard.database.table, root / table_rel)
        index_entries = []
        for name in db.index_names:
            attached = shard.database.get_index(name)
            index_rel = f"{gen_rel}/{_shard_dir(shard.shard_id)}/{name}.idx"
            if attached.kind in _BITMAP_KINDS:
                save_bitmap_index(attached.index, root / index_rel)
            else:
                save_vafile(attached.index, root / index_rel)
            index_entries.append({
                "name": name,
                "kind": attached.kind,
                "attributes": list(attached.attributes),
                "options": _index_options(attached),
                "file": _file_record(root, index_rel),
            })
        shard_entries.append({
            "shard_id": shard.shard_id,
            "num_records": shard.database.table.num_records,
            "rows": _file_record(root, rows_rel),
            "table": _file_record(root, table_rel),
            "indexes": index_entries,
        })
    manifest = {
        "format": _FORMAT,
        "version": _VERSION,
        "generation": generation,
        "num_records": db.num_records,
        "num_shards": db.num_shards,
        "partitioner": db.partitioner_name,
        "attributes": [
            {"name": spec.name, "cardinality": spec.cardinality}
            for spec in db.table.schema
        ],
        "shards": shard_entries,
    }
    integrity.atomic_write(
        manifest_path, manifest_text(manifest).encode("utf-8")
    )
    # Commit point passed: the new manifest is durable.  Clearing stale
    # generations (and pre-generation shard-* layouts) is best-effort —
    # a crash here leaves orphans that fsck reports and load ignores.
    if gc_stale:
        for entry in _owned_entries(root):
            if entry.name != gen_rel:
                shutil.rmtree(entry, ignore_errors=True)
    return manifest_path


def _read_manifest(manifest_path: Path) -> dict:
    """Parse and integrity-check ``manifest.json``."""
    if not manifest_path.exists():
        raise ShardError(f"no {MANIFEST_NAME} in {manifest_path.parent}")
    try:
        text = manifest_path.read_text(encoding="utf-8")
        manifest = json.loads(text)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ShardError(f"{manifest_path} is not valid JSON: {exc}")
    if not isinstance(manifest, dict):
        raise ShardError(f"{manifest_path}: manifest is not a JSON object")
    if manifest.get("format") != _FORMAT:
        raise ShardError(
            f"{manifest_path}: unexpected format tag "
            f"{manifest.get('format')!r}"
        )
    version = manifest.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise ShardError(
            f"{manifest_path}: unsupported manifest version {version!r} "
            f"(this build reads {sorted(_SUPPORTED_VERSIONS)})"
        )
    if version >= 2:
        recorded = manifest.get("self_crc32")
        body = {k: v for k, v in manifest.items() if k != "self_crc32"}
        canonical = json.dumps(body, indent=2, sort_keys=True)
        actual = crc32(canonical.encode("utf-8"))
        if recorded != actual:
            record("storage.checksum_failures")
            raise ShardError(
                f"{manifest_path}: manifest checksum mismatch "
                f"(recorded {recorded}, content hashes to {actual}); "
                f"the manifest has been corrupted or hand-edited"
            )
    return manifest


def _check_shard_entries(manifest: dict, manifest_path: Path) -> list[dict]:
    """Shard entries in shard-id order, with duplicate/missing ids rejected."""
    entries = sorted(manifest["shards"], key=lambda e: e["shard_id"])
    seen: dict[int, int] = {}
    for entry in entries:
        shard_id = entry["shard_id"]
        if shard_id in seen:
            raise ShardError(
                f"{manifest_path}: duplicate shard_id {shard_id} in manifest"
            )
        seen[shard_id] = shard_id
    expected = list(range(len(entries)))
    if sorted(seen) != expected:
        raise ShardError(
            f"{manifest_path}: shard ids {sorted(seen)} are not the "
            f"contiguous range 0..{len(entries) - 1}"
        )
    return entries


def _check_row_coverage(
    num_records: int, rows_per_shard: list[np.ndarray]
) -> None:
    """Reject row maps that are not a partition, naming the offending shard."""
    for shard_id, rows in enumerate(rows_per_shard):
        if len(rows) and (rows.min() < 0 or rows.max() >= num_records):
            bad = rows[(rows < 0) | (rows >= num_records)][0]
            raise ShardError(
                f"shard {shard_id} claims global row id {int(bad)}, outside "
                f"0..{num_records - 1}"
            )
    merged = (
        np.concatenate(rows_per_shard)
        if rows_per_shard
        else np.empty(0, dtype=np.int64)
    )
    counts = np.bincount(merged, minlength=num_records)
    duplicated = np.flatnonzero(counts > 1)
    if duplicated.size:
        row = int(duplicated[0])
        owners = [
            shard_id
            for shard_id, rows in enumerate(rows_per_shard)
            if np.isin(row, rows)
        ]
        raise ShardError(
            f"global row id {row} is claimed by shards {owners} "
            f"({duplicated.size} duplicated ids in total)"
        )
    missing = np.flatnonzero(counts == 0)
    if missing.size:
        raise ShardError(
            f"global row id {int(missing[0])} is not owned by any shard "
            f"({missing.size} unowned ids in total)"
        )


def _verify_recorded_crc(
    path: Path, recorded_crc, recorded_bytes, context: str
) -> None:
    """Check a file against the CRC/size the manifest recorded for it."""
    if not path.exists():
        raise CorruptIndexError(f"{context}: {path} is missing")
    if recorded_crc is None:
        return  # v1 manifest: nothing recorded
    actual_crc, actual_bytes = file_crc32(path)
    if recorded_bytes is not None and actual_bytes != recorded_bytes:
        record("storage.checksum_failures")
        raise CorruptIndexError(
            f"{context}: {path} is {actual_bytes} bytes but the manifest "
            f"recorded {recorded_bytes}"
        )
    if actual_crc != recorded_crc:
        record("storage.checksum_failures")
        raise CorruptIndexError(
            f"{context}: {path} fails its manifest checksum "
            f"(recorded {recorded_crc}, file hashes to {actual_crc})"
        )


def _load_rows(path: Path, context: str) -> np.ndarray:
    """Load a framed (or legacy raw ``.npy``) row-map file."""
    try:
        data = path.read_bytes()
        if data[:4] == b"RPF1":
            sections = parse_frame(data, source=str(path))
            data = b"".join(payload for _, payload in sections)
        else:
            record("storage.legacy_loads")
        rows = np.load(io.BytesIO(data), allow_pickle=False)
    except FileNotFoundError:
        raise CorruptIndexError(f"{context}: {path} is missing")
    except CorruptIndexError as exc:
        raise CorruptIndexError(f"{context}: {exc}") from exc
    except (ValueError, OSError, EOFError) as exc:
        raise CorruptIndexError(
            f"{context}: corrupt row-map file {path} ({exc})"
        ) from exc
    return np.asarray(rows).astype(np.int64)


def load_sharded(
    directory: str | os.PathLike,
    parallel: bool = True,
    max_workers: int | None = None,
    cache_bytes: int = DEFAULT_CACHE_BYTES,
    executor=None,
) -> ShardedDatabase:
    """Rebuild a :class:`ShardedDatabase` saved by :func:`save_sharded`.

    Table and row-map files are load-bearing: if one is missing or fails
    its checksum the load raises :class:`CorruptIndexError` naming the file
    and shard.  Index files are derived state: a corrupt or missing index
    file is reported (``RuntimeWarning`` + ``storage.index_rebuilds``
    counter) and that shard's index is rebuilt from its table using the
    options recorded in the manifest, so the database still opens and
    answers queries identically.

    The verified file paths are remembered on the returned database, so the
    ``processes`` shard executor (``executor="processes"`` here, or
    ``REPRO_SHARD_EXECUTOR``) can bootstrap its workers by memory-mapping
    the same generation directory instead of re-shipping rows.  A rebuilt
    index has no trustworthy file and is deliberately left unrecorded.
    """
    root = Path(directory)
    manifest_path = root / MANIFEST_NAME
    manifest = _read_manifest(manifest_path)
    num_records = int(manifest["num_records"])
    schema = Schema(
        AttributeSpec(entry["name"], int(entry["cardinality"]))
        for entry in manifest["attributes"]
    )
    entries = _check_shard_entries(manifest, manifest_path)
    rows_per_shard = []
    shard_tables = []
    for entry in entries:
        shard_id = entry["shard_id"]
        context = f"shard {shard_id}"
        rows_rel, rows_crc, rows_bytes = _file_fields(entry["rows"])
        _verify_recorded_crc(root / rows_rel, rows_crc, rows_bytes, context)
        rows = _load_rows(root / rows_rel, context)
        table_rel, table_crc, table_bytes = _file_fields(entry["table"])
        _verify_recorded_crc(root / table_rel, table_crc, table_bytes, context)
        try:
            shard_table = load_table(root / table_rel)
        except FileNotFoundError:
            raise CorruptIndexError(
                f"{context}: {root / table_rel} is missing"
            )
        except CorruptIndexError as exc:
            raise CorruptIndexError(f"{context}: {exc}") from exc
        if len(rows) != shard_table.num_records:
            raise ShardError(
                f"shard {shard_id}: {len(rows)} row ids but "
                f"{shard_table.num_records} table rows"
            )
        if list(shard_table.schema.names) != [s.name for s in schema]:
            raise ShardError(
                f"shard {shard_id}: table schema disagrees with the manifest"
            )
        rows_per_shard.append(rows)
        shard_tables.append(shard_table)
    _check_row_coverage(num_records, rows_per_shard)
    assignment = ShardAssignment(
        partitioner=manifest["partitioner"],
        num_records=num_records,
        shards=tuple(rows_per_shard),
    )
    assignment.validate()
    # Reassemble the full table by scattering shard columns through their
    # global row ids; the coverage checks above guarantee a full partition.
    columns = {}
    for spec in schema:
        full = np.zeros(num_records, dtype=np.int64)
        for rows, shard_table in zip(rows_per_shard, shard_tables):
            full[rows] = shard_table.column(spec.name)
        columns[spec.name] = full
    table = IncompleteTable(schema, columns)
    db = ShardedDatabase._restore(
        table,
        assignment,
        shard_tables,
        parallel=parallel,
        max_workers=max_workers,
        cache_bytes=cache_bytes,
        executor=executor,
    )
    storage: dict[int, dict] = {
        entry["shard_id"]: {
            "table": str(root / _file_fields(entry["table"])[0]),
            "indexes": {},
        }
        for entry in entries
    }
    for entry in entries:
        shard = db.shards[entry["shard_id"]]
        for index_entry in entry["indexes"]:
            kind = index_entry["kind"]
            if kind not in _BITMAP_KINDS and kind != "vafile":
                raise ShardError(
                    f"manifest names unloadable index kind {kind!r}"
                )
            rel, crc, nbytes = _file_fields(index_entry["file"])
            path = root / rel
            try:
                _verify_recorded_crc(
                    path, crc, nbytes, f"shard {entry['shard_id']}"
                )
                if kind in _BITMAP_KINDS:
                    index = load_bitmap_index_file(path)
                else:
                    index = load_vafile_file(path, shard.database.table)
            except CorruptIndexError as exc:
                record("storage.index_rebuilds")
                warnings.warn(
                    f"shard {entry['shard_id']}: index "
                    f"{index_entry['name']!r} could not be loaded ({exc}); "
                    f"rebuilding it from the shard table",
                    RuntimeWarning,
                    stacklevel=2,
                )
                shard.database.create_index(
                    index_entry["name"],
                    kind,
                    attributes=index_entry["attributes"],
                    **index_entry.get("options", {}),
                )
                continue
            shard.database.attach_index(
                index_entry["name"],
                kind,
                index,
                attributes=index_entry["attributes"],
                options=index_entry.get("options", {}),
            )
            storage[entry["shard_id"]]["indexes"][index_entry["name"]] = (
                str(path)
            )
    db._storage = storage
    for entry in entries[:1]:
        for index_entry in entry["indexes"]:
            db._attach_shard_indexes(
                index_entry["name"],
                index_entry["kind"],
                index_entry["attributes"],
                options=index_entry.get("options", {}),
            )
    return db
