"""Row-range partitioners for :class:`~repro.shard.ShardedDatabase`.

A partitioner splits a table's record ids ``0..n-1`` into ``k`` disjoint
shards.  Per-attribute bitmaps and VA approximations for disjoint row
slices can be built, queried, and merged independently, so any partition is
*correct*; partitioners differ in what they optimize:

* :class:`ContiguousPartitioner` — equal-size contiguous row ranges.  On
  clustered data (e.g. after :func:`repro.dataset.reorder.lexicographic_order`)
  each shard covers a narrow slice of the leading attribute's domain, which
  is what makes statistics-based shard pruning effective.
* :class:`RoundRobinPartitioner` — record ``i`` goes to shard ``i % k``.
  Perfect row-count balance, deliberately destroys clustering; the control
  case for partitioner experiments.
* :class:`MissingDensityPartitioner` — balances the *number of missing
  cells* per shard, so shards cost roughly the same under
  ``missing-is-a-match`` semantics (missing bitmaps are consulted per
  query dimension, and a shard holding most of the missing data becomes
  the fan-out straggler).

Every partitioner returns a :class:`ShardAssignment` whose per-shard id
arrays are sorted ascending, disjoint, and jointly cover ``0..n-1`` —
:meth:`ShardAssignment.validate` checks exactly that, and the scatter-gather
merge relies on it to reproduce the unsharded result bit for bit.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.dataset.table import IncompleteTable
from repro.errors import ShardError

__all__ = [
    "ContiguousPartitioner",
    "MissingDensityPartitioner",
    "PARTITIONERS",
    "Partitioner",
    "RoundRobinPartitioner",
    "ShardAssignment",
    "get_partitioner",
]


@dataclass(frozen=True)
class ShardAssignment:
    """Which global record ids each shard owns.

    ``shards[s]`` is a sorted ``int64`` array of the global record ids
    assigned to shard ``s``.  Arrays are disjoint and jointly cover
    ``0..num_records-1``.
    """

    partitioner: str
    num_records: int
    shards: tuple[np.ndarray, ...]

    @property
    def num_shards(self) -> int:
        """Number of shards in the assignment."""
        return len(self.shards)

    def validate(self) -> None:
        """Raise :class:`ShardError` unless the assignment is a partition."""
        total = sum(len(ids) for ids in self.shards)
        if total != self.num_records:
            raise ShardError(
                f"shard assignment covers {total} rows, table has "
                f"{self.num_records}"
            )
        for shard_id, ids in enumerate(self.shards):
            if len(ids) and np.any(ids[1:] <= ids[:-1]):
                raise ShardError(
                    f"shard {shard_id} ids are not strictly ascending"
                )
        if self.num_records:
            merged = np.concatenate(self.shards) if self.shards else np.empty(0)
            if not np.array_equal(
                np.sort(merged), np.arange(self.num_records, dtype=np.int64)
            ):
                raise ShardError(
                    "shard assignment is not a partition of 0..n-1"
                )

    def __repr__(self) -> str:
        sizes = ", ".join(str(len(ids)) for ids in self.shards)
        return (
            f"ShardAssignment({self.partitioner!r}, "
            f"{self.num_records} rows -> [{sizes}])"
        )


class Partitioner(abc.ABC):
    """Strategy splitting a table's rows into ``k`` disjoint shards."""

    #: Registry name, set by subclasses; recorded in shard manifests.
    name: str = "abstract"

    @abc.abstractmethod
    def assign(self, table: IncompleteTable, num_shards: int) -> ShardAssignment:
        """Partition ``table``'s record ids into ``num_shards`` shards."""

    def partition(self, table: IncompleteTable, num_shards: int) -> ShardAssignment:
        """Validated :meth:`assign`; the entry point callers should use."""
        if num_shards < 1:
            raise ShardError(f"num_shards must be >= 1, got {num_shards}")
        if table.num_records and num_shards > table.num_records:
            raise ShardError(
                f"cannot split {table.num_records} records into "
                f"{num_shards} non-empty shards"
            )
        assignment = self.assign(table, num_shards)
        assignment.validate()
        return assignment

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ContiguousPartitioner(Partitioner):
    """Equal-size contiguous row ranges (``np.array_split`` semantics)."""

    name = "contiguous"

    def assign(self, table: IncompleteTable, num_shards: int) -> ShardAssignment:
        parts = np.array_split(
            np.arange(table.num_records, dtype=np.int64), num_shards
        )
        return ShardAssignment(
            self.name, table.num_records, tuple(np.ascontiguousarray(p) for p in parts)
        )


class RoundRobinPartitioner(Partitioner):
    """Record ``i`` goes to shard ``i % num_shards``."""

    name = "round-robin"

    def assign(self, table: IncompleteTable, num_shards: int) -> ShardAssignment:
        ids = np.arange(table.num_records, dtype=np.int64)
        return ShardAssignment(
            self.name,
            table.num_records,
            tuple(ids[s::num_shards] for s in range(num_shards)),
        )


class MissingDensityPartitioner(Partitioner):
    """Balance the number of missing cells (and row counts) per shard.

    Rows are ordered by descending per-row missing-cell count (stable, so
    ties keep ascending-id order) and dealt to shards in a serpentine
    pattern — ``0,1,..,k-1, k-1,..,1,0, ...`` — which keeps both the row
    counts (within one) and the missing-cell loads balanced while staying
    fully vectorized and deterministic.
    """

    name = "missing-density"

    def assign(self, table: IncompleteTable, num_shards: int) -> ShardAssignment:
        missing_per_row = np.zeros(table.num_records, dtype=np.int64)
        for name in table.schema.names:
            missing_per_row += table.missing_mask(name)
        order = np.argsort(-missing_per_row, kind="stable")
        position = np.arange(table.num_records, dtype=np.int64)
        index = position % num_shards
        reverse = (position // num_shards) % 2 == 1
        shard_of = np.where(reverse, num_shards - 1 - index, index)
        shards = tuple(
            np.sort(order[shard_of == s]) for s in range(num_shards)
        )
        return ShardAssignment(self.name, table.num_records, shards)


#: Registry of partitioners by name, used by the manifest loader and the
#: ``partitioner=`` string convenience on :class:`ShardedDatabase`.
PARTITIONERS: dict[str, type[Partitioner]] = {
    cls.name: cls
    for cls in (
        ContiguousPartitioner,
        RoundRobinPartitioner,
        MissingDensityPartitioner,
    )
}


def get_partitioner(partitioner: str | Partitioner) -> Partitioner:
    """Resolve a partitioner instance from a name or pass one through."""
    if isinstance(partitioner, Partitioner):
        return partitioner
    try:
        return PARTITIONERS[partitioner]()
    except KeyError:
        raise ShardError(
            f"unknown partitioner {partitioner!r}; "
            f"expected one of {sorted(PARTITIONERS)}"
        )
