"""Pluggable shard-fanout executors: sequential, threads, and processes.

:class:`~repro.shard.sharded.ShardedDatabase` plans and merges; *how* the
surviving shards actually evaluate their slice of the work is this module's
job.  Three backends implement one interface:

``sequential``
    Evaluate shards one after another in the caller's thread.  Zero setup,
    deterministic, and the reference the other two are tested against.
``threads``
    The historical default: a lazily-created worker-thread pool.  Cheap
    fan-out, shared address space — but bitvector decoding is pure Python
    + numpy, so the GIL caps the speedup well below the shard count.
``processes``
    Long-lived worker processes, each holding resident
    :class:`~repro.core.engine.IncompleteDatabase` engines for its shards.
    Workers bootstrap **once** — either by memory-mapping the saved RPF1
    files of a :func:`~repro.shard.manifest.load_sharded` generation
    directory, or by attaching the parent's column arrays and serialized
    indexes through :mod:`multiprocessing.shared_memory` — so shard rows
    are never pickled per query.  Per query, only compact plan descriptors
    go out and only result-id arrays (plus metric/trace deltas) come back.

Backends are selected by the ``executor=`` argument of
:class:`~repro.shard.sharded.ShardedDatabase`, or — when that is left unset
— by the ``REPRO_SHARD_EXECUTOR`` environment variable, falling back to
``threads``/``sequential`` according to the legacy ``parallel`` flag.

Exactness contract: every backend returns word-identical record-id sets
under both missing semantics.  Worker processes replicate parent-side index
mutations (append/delete/compact bump the index generation; create/drop
bump the database's index epoch) through a staleness fence checked before
every fan-out, and their metric and trace deltas merge back into the
parent's registry so ``shard.*`` / ``engine.*`` telemetry stays exact.
"""

from __future__ import annotations

import os
import traceback
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.errors import ShardError
from repro.query.model import MissingSemantics, RangeQuery

__all__ = [
    "EXECUTOR_ENV_VAR",
    "EXECUTORS",
    "ProcessShardExecutor",
    "SequentialShardExecutor",
    "ShardBatchOutcome",
    "ShardBatchTask",
    "ShardExecutor",
    "ShardOutcome",
    "ShardQueryTask",
    "ThreadShardExecutor",
    "resolve_executor",
]

EXECUTOR_ENV_VAR = "REPRO_SHARD_EXECUTOR"

#: Index kinds whose serialized form a worker process can reconstruct.
_BITMAP_KINDS = frozenset({"bee", "bre", "bie"})
_SHIPPABLE_KINDS = _BITMAP_KINDS | {"vafile"}


# -- task / outcome descriptors ------------------------------------------------
#
# Everything that crosses an executor boundary is one of these four compact,
# picklable records.  Index objects never travel in them: tasks carry index
# *names* plus the pre-combined cost estimate, and the receiving side looks
# the index up in its own (resident) engine.

@dataclass(frozen=True, slots=True)
class ShardQueryTask:
    """One shard's slice of a single scatter-gather query."""

    shard_id: int
    query: RangeQuery
    semantics: MissingSemantics
    #: Chosen index name (None = sequential scan fallback).
    index_name: str | None
    #: This shard's pre-computed cost estimate for the chosen index.
    estimate: object | None
    forced: bool
    trace: bool


@dataclass(frozen=True, slots=True)
class ShardBatchTask:
    """One shard's surviving slice of a batched workload."""

    shard_id: int
    #: Submission-order positions of the queries this shard executes.
    positions: tuple[int, ...]
    queries: tuple[RangeQuery, ...]
    #: Per-position ``(index_name, estimate, forced)`` plan descriptors.
    plans: tuple[tuple, ...]
    semantics: MissingSemantics
    trace: bool


@dataclass(frozen=True, slots=True)
class ShardOutcome:
    """One shard's answer to a :class:`ShardQueryTask`."""

    shard_id: int
    #: Shard-local record ids, ascending int64.
    record_ids: np.ndarray = field(repr=False)
    elapsed_ns: int = 0
    #: The shard-side query span tree, when the task asked for tracing.
    trace_root: object | None = field(default=None, repr=False)


@dataclass(frozen=True, slots=True)
class ShardBatchOutcome:
    """One shard's answers to a :class:`ShardBatchTask`."""

    shard_id: int
    positions: tuple[int, ...]
    #: Per-position ``(record_ids, elapsed_ns)`` pairs.
    results: tuple[tuple[np.ndarray, int], ...]


# -- shared in-process evaluation ----------------------------------------------

def _run_query_task(database, task: ShardQueryTask) -> ShardOutcome:
    """Evaluate one query task against a (local or worker-resident) engine."""
    if task.index_name is None:
        planned = (None, None, False)
    else:
        planned = (
            database.get_index(task.index_name),
            task.estimate,
            task.forced,
        )
    report = database._execute_query(
        task.query,
        task.semantics,
        using=None,
        trace=task.trace,
        planned=planned,
        recorded=False,
    )
    return ShardOutcome(
        shard_id=task.shard_id,
        record_ids=np.asarray(report.record_ids, dtype=np.int64),
        elapsed_ns=report.elapsed_ns or 0,
        trace_root=report.trace.root if report.trace is not None else None,
    )


def _run_batch_task(database, task: ShardBatchTask) -> ShardBatchOutcome:
    """Evaluate one batch task through the engine's grouped batch executor."""
    if not task.positions:
        return ShardBatchOutcome(task.shard_id, (), ())
    sub_planned = []
    for index_name, estimate, forced in task.plans:
        if index_name is None:
            sub_planned.append((None, None, False))
        else:
            sub_planned.append(
                (database.get_index(index_name), estimate, forced)
            )
    reports = database._run_planned_batch(
        list(task.queries),
        sub_planned,
        task.semantics,
        task.trace,
        database.sub_result_cache,
        recorded=False,
    )
    return ShardBatchOutcome(
        shard_id=task.shard_id,
        positions=tuple(task.positions),
        results=tuple(
            (np.asarray(r.record_ids, dtype=np.int64), r.elapsed_ns or 0)
            for r in reports
        ),
    )


# -- the executor interface ----------------------------------------------------

class ShardExecutor:
    """How a :class:`ShardedDatabase` evaluates its per-shard task lists.

    Implementations receive the owning database on every call (executors
    hold no strong reference to it, so ``weakref.finalize`` cleanup on the
    database can keep the executor alive without leaking the database).
    ``close()`` must be idempotent; the database raises on double-close,
    its executor does not.
    """

    name = "?"

    def run_query_tasks(self, db, tasks) -> list[ShardOutcome]:
        """Evaluate query tasks; outcomes in task order."""
        raise NotImplementedError

    def run_batch_tasks(self, db, tasks) -> list[ShardBatchOutcome]:
        """Evaluate batch tasks; outcomes in task order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pools/processes/shared memory (idempotent)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SequentialShardExecutor(ShardExecutor):
    """Evaluate every shard in the caller's thread, one after another."""

    name = "sequential"

    def run_query_tasks(self, db, tasks):
        if obs.enabled():
            obs.record("shard.sequential_fanouts")
        return [
            _run_query_task(db._shards[t.shard_id].database, t) for t in tasks
        ]

    def run_batch_tasks(self, db, tasks):
        if obs.enabled():
            obs.record("shard.sequential_fanouts")
        return [
            _run_batch_task(db._shards[t.shard_id].database, t) for t in tasks
        ]


class ThreadShardExecutor(ShardExecutor):
    """Fan shards out over a lazily-created worker-thread pool.

    Single-task fan-outs run inline (and count as sequential), exactly as
    the pre-executor thread pool did.  Worker exceptions re-raise unwrapped
    in the caller — ``Future.result()`` propagates the original object.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    def _ensure_pool(self, db) -> ThreadPoolExecutor:
        if self._closed:
            raise ShardError("this shard executor has been closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers or db._max_workers,
                thread_name_prefix="repro-shard",
            )
        return self._pool

    def _fan_out(self, db, tasks, runner):
        observing = obs.enabled()
        if len(tasks) > 1:
            pool = self._ensure_pool(db)
            futures = [
                pool.submit(runner, db._shards[t.shard_id].database, t)
                for t in tasks
            ]
            results = [future.result() for future in futures]
            if observing:
                obs.record("shard.parallel_fanouts")
        else:
            results = [
                runner(db._shards[t.shard_id].database, t) for t in tasks
            ]
            if observing:
                obs.record("shard.sequential_fanouts")
        return results

    def run_query_tasks(self, db, tasks):
        return self._fan_out(db, tasks, _run_query_task)

    def run_batch_tasks(self, db, tasks):
        return self._fan_out(db, tasks, _run_batch_task)

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# -- process backend -----------------------------------------------------------

def _attach_shared_memory(name: str):
    """Attach an existing segment without resource-tracker ownership.

    Python 3.13 grew ``track=False``; on older versions the attach
    registers with the resource tracker, whose exit-time cleanup would
    unlink a segment the *parent* still owns (bpo-38119) — and under the
    ``fork`` start method the tracker is shared with the parent, so even
    attach-then-unregister would cancel the parent's own registration.
    Suppressing the register call during attach sidesteps both.
    """
    from multiprocessing import resource_tracker, shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _load_index_entry(db, entry: dict, shm_view) -> None:
    """Deserialize one shipped index and attach it to a worker engine."""
    from repro.storage.serialize import (
        load_bitmap_index,
        load_bitmap_index_file,
        load_vafile,
        load_vafile_file,
    )

    mode, *detail = entry["source"]
    if mode == "shm":
        offset, length = detail
        blob = shm_view[offset:offset + length]
    elif mode == "blob":
        blob = detail[0]
    else:
        blob = None
    if entry["kind"] == "vafile":
        if blob is None:
            index = load_vafile_file(detail[0], db.table, use_mmap=True)
        else:
            index = load_vafile(blob, db.table)
    else:
        if blob is None:
            index = load_bitmap_index_file(detail[0], use_mmap=True)
        else:
            index = load_bitmap_index(blob)
    db.attach_loaded_index(
        entry["name"],
        entry["kind"],
        index,
        attributes=entry["attributes"],
        generation=entry.get("generation"),
        deleted=entry.get("deleted"),
    )


def _build_worker_engine(payload: dict, attachments: list):
    """Reconstruct one shard's engine from a bootstrap payload.

    The table comes either from the saved ``table.npz`` (mmap-free but
    page-cache shared) or from columns viewed directly over the parent's
    shared-memory segment; indexes come from mmap'd RPF1 files, from
    blobs inside the segment, or from pipe-shipped blobs.  Either way the
    worker never re-validates or copies row data.
    """
    from repro.core.engine import IncompleteDatabase
    from repro.dataset.io import load_table

    shm_view = None
    if payload.get("shm"):
        shm = _attach_shared_memory(payload["shm"])
        attachments.append(shm)
        # Read-only view: worker-side numpy arrays over the segment come
        # out non-writable, matching the file-load discipline.
        shm_view = memoryview(shm.buf).toreadonly()
    mode, detail = payload["table"]
    if mode == "shm":
        columns = {
            name: np.frombuffer(
                shm_view, dtype=np.int64, count=count, offset=offset
            )
            for name, offset, count in detail
        }
        db = IncompleteDatabase.from_columns(
            payload["specs"], columns, cache_bytes=payload["cache_bytes"]
        )
    else:
        db = IncompleteDatabase(
            load_table(detail), cache_bytes=payload["cache_bytes"]
        )
    for entry in payload["indexes"]:
        _load_index_entry(db, entry, shm_view)
    return db


def _worker_main(conn) -> None:
    """Worker-process loop: bootstrap once, then serve plan descriptors.

    Replies are always ``(status, payload, metrics)`` triples; ``metrics``
    carries the registry delta accumulated while serving the request (so
    partial work done before an error still counts in the parent).
    """
    from repro.bitvector import kernels

    engines: dict[int, object] = {}
    attachments: list = []
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "stop":
            break
        metrics = None
        try:
            if kind == "bootstrap":
                _, payloads, backend = message
                kernels.set_backend(backend)
                for payload in payloads:
                    engines[payload["shard_id"]] = _build_worker_engine(
                        payload, attachments
                    )
                reply = ("ok", None, None)
            elif kind == "sync":
                _, shard_id, entries, drops = message
                database = engines[shard_id]
                for name in drops:
                    if name in database.index_names:
                        database.drop_index(name)
                shm_view = None
                for entry in entries:
                    _load_index_entry(database, entry, shm_view)
                reply = ("ok", None, None)
            elif kind in ("query", "batch"):
                _, tasks, observing = message
                runner = (
                    _run_query_task if kind == "query" else _run_batch_task
                )
                if observing:
                    registry = obs.MetricsRegistry()
                    with obs.use_registry(registry):
                        outcomes = [
                            runner(engines[t.shard_id], t) for t in tasks
                        ]
                    metrics = registry.dump_state()
                else:
                    outcomes = [
                        runner(engines[t.shard_id], t) for t in tasks
                    ]
                if kind == "query":
                    payload = [
                        (
                            o.shard_id,
                            o.record_ids,
                            o.elapsed_ns,
                            o.trace_root.to_payload()
                            if o.trace_root is not None
                            else None,
                        )
                        for o in outcomes
                    ]
                else:
                    payload = [
                        (o.shard_id, o.positions, o.results)
                        for o in outcomes
                    ]
                reply = ("ok", payload, metrics)
            else:
                raise ShardError(f"unknown worker message {kind!r}")
        except BaseException as exc:
            tb = traceback.format_exc()
            try:
                reply = ("error", (exc, tb), metrics)
                conn.send(reply)
                continue
            except Exception:
                fallback = ShardError(
                    f"worker raised an unpicklable exception: {exc!r}"
                )
                reply = ("error", (fallback, tb), None)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except Exception:
        pass
    # Engines hold numpy views over the attached segments; drop them (and
    # collect) before closing, or mmap refuses with "exported pointers
    # exist" and the interpreter-shutdown __del__ spams stderr.
    engines.clear()
    import gc

    gc.collect()
    for shm in attachments:
        try:
            shm.close()
        except Exception:
            pass


def _finalize_process_state(procs, conns, segments) -> None:
    """Tear down worker processes and shared memory (idempotent pieces)."""
    for conn in conns:
        try:
            conn.send(("stop",))
        except Exception:
            pass
    for proc in procs:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
    for conn in conns:
        try:
            conn.close()
        except Exception:
            pass
    for shm in segments:
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except Exception:
            pass


class ProcessShardExecutor(ShardExecutor):
    """Long-lived worker processes holding resident shard engines.

    Parameters
    ----------
    max_workers:
        Worker-process count; defaults to the database's explicit
        ``max_workers`` or ``min(num_shards, os.cpu_count())``.  Shards
        are assigned round-robin, so fewer workers than shards serializes
        some shards within a worker but stays exact.
    start_method:
        ``"spawn"`` (default; no inherited locks or file handles) or
        ``"fork"`` (faster startup; the :mod:`repro.forksafe` registry
        re-arms inherited locks in the child).

    The executor binds to the first database it serves: bootstrap ships
    that database's shard tables and indexes once, and a per-shard
    staleness fence re-ships serialized indexes whenever the parent's
    index epoch or any index generation moves.
    """

    name = "processes"

    def __init__(
        self,
        max_workers: int | None = None,
        start_method: str = "spawn",
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if start_method not in ("spawn", "fork", "forkserver"):
            raise ShardError(
                f"unknown start method {start_method!r}; expected "
                f"'spawn', 'fork', or 'forkserver'"
            )
        self._max_workers = max_workers
        self._start_method = start_method
        self._procs: list = []
        self._conns: list = []
        self._segments: list = []
        self._shard_worker: dict[int, int] = {}
        self._shipped: dict[int, tuple] = {}
        self._bound: weakref.ref | None = None
        self._closed = False

    # -- fingerprints / staleness fence ------------------------------------

    @staticmethod
    def _shard_fingerprint(db, shard) -> tuple:
        entries = []
        for name in sorted(shard.database.index_names):
            attached = shard.database.get_index(name)
            entries.append((
                name,
                attached.kind,
                attached.attributes,
                int(getattr(attached.index, "generation", 0) or 0),
                int(getattr(attached.index, "deleted_count", 0) or 0),
            ))
        return (db._index_epoch, tuple(entries))

    # -- bootstrap ---------------------------------------------------------

    @staticmethod
    def _index_state(attached) -> dict:
        index = attached.index
        deleted = getattr(index, "_deleted", None)
        return {
            "name": attached.name,
            "kind": attached.kind,
            "attributes": attached.attributes,
            "generation": int(getattr(index, "generation", 0) or 0),
            "deleted": deleted.tobytes() if deleted is not None else None,
        }

    @classmethod
    def _index_blob_entry(cls, attached) -> dict:
        from repro.storage.serialize import dump_bitmap_index, dump_vafile

        if attached.kind not in _SHIPPABLE_KINDS:
            raise ShardError(
                f"the process shard executor cannot replicate index "
                f"{attached.name!r} of kind {attached.kind!r}; "
                f"shippable kinds are {sorted(_SHIPPABLE_KINDS)}"
            )
        if attached.kind == "vafile":
            blob = dump_vafile(attached.index)
        else:
            blob = dump_bitmap_index(attached.index)
        entry = cls._index_state(attached)
        entry["source"] = ("blob", blob)
        return entry

    def _payload_for_shard(self, db, shard) -> dict:
        """Bootstrap payload: mmap'd files when pristine, shm otherwise."""
        table = shard.database.table
        storage = (db._storage or {}).get(shard.shard_id)
        payload = {
            "shard_id": shard.shard_id,
            "cache_bytes": db._cache_bytes,
            "specs": [
                (spec.name, spec.cardinality) for spec in table.schema
            ],
            "shm": None,
            "indexes": [],
        }
        if storage is not None:
            payload["table"] = ("file", storage["table"])
            for name in shard.database.index_names:
                attached = shard.database.get_index(name)
                path = storage["indexes"].get(name)
                index = attached.index
                pristine = (
                    path is not None
                    and not int(getattr(index, "generation", 0) or 0)
                    and getattr(index, "_deleted", None) is None
                )
                if pristine:
                    entry = self._index_state(attached)
                    entry["source"] = ("file", path)
                    payload["indexes"].append(entry)
                else:
                    payload["indexes"].append(
                        self._index_blob_entry(attached)
                    )
            return payload
        from multiprocessing import shared_memory

        chunks: list[bytes] = []
        offset = 0
        column_info = []
        for name in table.schema.names:
            data = table.column(name).tobytes()
            column_info.append((name, offset, table.num_records))
            chunks.append(data)
            offset += len(data)
        payload["table"] = ("shm", column_info)
        for name in shard.database.index_names:
            entry = self._index_blob_entry(shard.database.get_index(name))
            blob = entry["source"][1]
            entry["source"] = ("shm", offset, len(blob))
            payload["indexes"].append(entry)
            chunks.append(blob)
            offset += len(blob)
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        position = 0
        for data in chunks:
            shm.buf[position:position + len(data)] = data
            position += len(data)
        self._segments.append(shm)
        payload["shm"] = shm.name
        return payload

    def _worker_count(self, db) -> int:
        if self._max_workers is not None:
            workers = self._max_workers
        elif db._max_workers_explicit:
            workers = db._max_workers
        else:
            workers = os.cpu_count() or 1
        return max(1, min(workers, db.num_shards))

    def _start(self, db) -> None:
        import multiprocessing as mp

        from repro.bitvector.kernels import get_backend

        context = mp.get_context(self._start_method)
        workers = self._worker_count(db)
        payloads: dict[int, list[dict]] = {i: [] for i in range(workers)}
        try:
            for shard in db._shards:
                worker_id = shard.shard_id % workers
                self._shard_worker[shard.shard_id] = worker_id
                payloads[worker_id].append(
                    self._payload_for_shard(db, shard)
                )
            for worker_id in range(workers):
                parent_conn, child_conn = context.Pipe()
                proc = context.Process(
                    target=_worker_main,
                    args=(child_conn,),
                    daemon=True,
                    name=f"repro-shard-worker-{worker_id}",
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
                parent_conn.send(
                    ("bootstrap", payloads[worker_id], get_backend().name)
                )
            for worker_id in range(workers):
                self._recv(worker_id)
        except BaseException:
            _finalize_process_state(
                self._procs, self._conns, self._segments
            )
            self._procs, self._conns, self._segments = [], [], []
            self._shard_worker.clear()
            raise
        for shard in db._shards:
            self._shipped[shard.shard_id] = self._shard_fingerprint(
                db, shard
            )
        self._bound = weakref.ref(db)

    def _ensure_ready(self, db) -> None:
        if self._closed:
            raise ShardError("this shard executor has been closed")
        if self._bound is None:
            self._start(db)
            return
        if self._bound() is not db:
            raise ShardError(
                "a ProcessShardExecutor is bound to the first "
                "ShardedDatabase it serves; create a fresh executor for "
                "each database"
            )
        self._sync_stale_shards(db)

    def _sync_stale_shards(self, db) -> None:
        """Re-ship any shard whose index state moved since last fan-out."""
        for shard in db._shards:
            fingerprint = self._shard_fingerprint(db, shard)
            if self._shipped.get(shard.shard_id) == fingerprint:
                continue
            shipped_names = {
                entry[0] for entry in self._shipped[shard.shard_id][1]
            }
            current = set(shard.database.index_names)
            entries = [
                self._index_blob_entry(shard.database.get_index(name))
                for name in sorted(current)
            ]
            drops = sorted(shipped_names - current)
            worker_id = self._shard_worker[shard.shard_id]
            self._send(worker_id, ("sync", shard.shard_id, entries, drops))
            self._recv(worker_id)
            self._shipped[shard.shard_id] = fingerprint
            if obs.enabled():
                obs.record("shard.executor.syncs")

    # -- the wire ----------------------------------------------------------

    def _send(self, worker_id: int, message) -> None:
        try:
            self._conns[worker_id].send(message)
        except (BrokenPipeError, OSError) as exc:
            raise ShardError(
                f"shard worker {worker_id} is gone "
                f"(exitcode {self._procs[worker_id].exitcode}): {exc}"
            ) from exc

    def _recv(self, worker_id: int):
        try:
            status, payload, metrics = self._conns[worker_id].recv()
        except (EOFError, OSError) as exc:
            raise ShardError(
                f"shard worker {worker_id} died before replying "
                f"(exitcode {self._procs[worker_id].exitcode})"
            ) from exc
        if metrics:
            obs.get_registry().merge_state(metrics)
        if status == "error":
            exc, tb = payload
            if hasattr(exc, "add_note"):
                exc.add_note(f"shard worker {worker_id} traceback:\n{tb}")
            raise exc
        return payload

    def _dispatch(self, db, tasks, kind: str) -> dict:
        """Send every worker its task slice, then gather all replies.

        Replies are drained from every messaged worker even if one raised,
        so a failed fan-out never leaves stale replies queued for the next
        one; the first worker error re-raises after the drain.
        """
        self._ensure_ready(db)
        observing = obs.enabled()
        by_worker: dict[int, list] = {}
        for task in tasks:
            by_worker.setdefault(
                self._shard_worker[task.shard_id], []
            ).append(task)
        for worker_id, worker_tasks in by_worker.items():
            self._send(worker_id, (kind, worker_tasks, observing))
        replies: dict[int, list] = {}
        failure: BaseException | None = None
        for worker_id in by_worker:
            try:
                replies[worker_id] = self._recv(worker_id)
            except BaseException as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
        if observing:
            obs.record("shard.process_fanouts")
        return replies

    def run_query_tasks(self, db, tasks):
        from repro.observability.trace import Span

        replies = self._dispatch(db, tasks, "query")
        by_shard = {}
        for reply in replies.values():
            for shard_id, record_ids, elapsed_ns, trace_payload in reply:
                by_shard[shard_id] = ShardOutcome(
                    shard_id=shard_id,
                    record_ids=np.asarray(record_ids, dtype=np.int64),
                    elapsed_ns=elapsed_ns,
                    trace_root=(
                        Span.from_payload(trace_payload)
                        if trace_payload is not None
                        else None
                    ),
                )
        return [by_shard[task.shard_id] for task in tasks]

    def run_batch_tasks(self, db, tasks):
        # Shards with no surviving queries need no round trip.
        live = [task for task in tasks if task.positions]
        replies = self._dispatch(db, live, "batch")
        by_shard = {
            task.shard_id: ShardBatchOutcome(task.shard_id, (), ())
            for task in tasks
        }
        for reply in replies.values():
            for shard_id, positions, results in reply:
                by_shard[shard_id] = ShardBatchOutcome(
                    shard_id=shard_id,
                    positions=tuple(positions),
                    results=tuple(
                        (np.asarray(ids, dtype=np.int64), elapsed)
                        for ids, elapsed in results
                    ),
                )
        return [by_shard[task.shard_id] for task in tasks]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        _finalize_process_state(self._procs, self._conns, self._segments)
        self._procs, self._conns, self._segments = [], [], []
        self._shard_worker.clear()
        self._shipped.clear()
        self._bound = None


# -- registry / resolution -----------------------------------------------------

EXECUTORS: dict[str, type[ShardExecutor]] = {
    "sequential": SequentialShardExecutor,
    "threads": ThreadShardExecutor,
    "processes": ProcessShardExecutor,
}


def resolve_executor(
    spec: str | ShardExecutor | None = None, parallel: bool = True
) -> ShardExecutor:
    """Turn an executor spec into an instance.

    Resolution order: an explicit instance or registry name wins; otherwise
    the ``REPRO_SHARD_EXECUTOR`` environment variable; otherwise the legacy
    ``parallel`` flag (``threads`` when true, ``sequential`` when false).
    """
    if isinstance(spec, ShardExecutor):
        return spec
    name = spec
    if name is None:
        name = os.environ.get(EXECUTOR_ENV_VAR) or None
    if name is None:
        name = "threads" if parallel else "sequential"
    try:
        factory = EXECUTORS[name]
    except KeyError:
        raise ShardError(
            f"unknown shard executor {name!r}; expected one of "
            f"{sorted(EXECUTORS)} (or a ShardExecutor instance)"
        )
    return factory()
