"""Sharded incomplete database: scatter-gather over row-range shards.

:class:`ShardedDatabase` partitions an
:class:`~repro.dataset.table.IncompleteTable` into N row-range shards (see
:mod:`repro.shard.partition`), owns one
:class:`~repro.core.engine.IncompleteDatabase` per shard, and serves the
same query API by scatter-gather:

1. **Plan once.**  Per-shard plan rankings are merged with
   :func:`repro.core.planner.combine_shard_estimates`, so the whole fan-out
   executes one chosen index and no shard re-plans (or re-reads size
   reports) per query.
2. **Prune.**  Per-shard exact value histograms
   (:class:`~repro.core.statistics.TableStatistics`) act as zone maps: a
   shard whose histogram shows zero possible matches for some query
   attribute is skipped entirely.  Histograms are exact, so pruning never
   changes results — on clustered data (e.g. after
   :func:`repro.dataset.reorder.lexicographic_order`) this is where the
   sharded speedup comes from.
3. **Fan out.**  Surviving shards evaluate through a pluggable
   :class:`~repro.shard.executor.ShardExecutor` — ``sequential`` (caller's
   thread), ``threads`` (worker-thread pool; the default), or
   ``processes`` (long-lived worker processes holding resident shard
   engines; see :mod:`repro.shard.executor`).  In-process worker
   exceptions re-raise unwrapped in the caller.
4. **Merge.**  Per-shard local record ids map through each shard's
   ``global_ids`` and concatenate; because shards partition the row space
   and every access method returns ascending ids, one final sort makes the
   result bit-identical to the unsharded database under both missing
   semantics.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.core.cache import DEFAULT_CACHE_BYTES, CacheStats
from repro.core.engine import (
    _PREFERENCE,
    IncompleteDatabase,
    QueryReport,
    RankedReport,
    rank_both_bounds,
)
from repro.core.planner import (
    CostEstimate,
    combine_shard_estimates,
    rank_plans,
    semantics_for_costing,
)
from repro.core.statistics import TableStatistics
from repro.dataset.table import IncompleteTable
from repro.errors import QueryError, ReproError, ShardError
from repro.query.model import BOTH, MissingSemantics, RangeQuery, resolve_semantics
from repro.shard.executor import (
    ShardBatchTask,
    ShardExecutor,
    ShardQueryTask,
    resolve_executor,
)
from repro.shard.partition import Partitioner, get_partitioner

__all__ = [
    "ShardReportSlice",
    "ShardedDatabase",
    "ShardedQueryReport",
    "ShardedThreeValuedReport",
]


@dataclass(frozen=True, slots=True)
class ShardReportSlice:
    """One shard's contribution to a sharded query."""

    shard_id: int
    #: True when the shard was skipped by statistics-based pruning.
    pruned: bool
    num_matches: int
    elapsed_ns: int


@dataclass(frozen=True, slots=True)
class _IndexMeta:
    """Shard-level record of a fanned-out index registration."""

    kind: str
    attributes: tuple[str, ...]
    #: Constructor options the index was created with; the serving layer's
    #: writer path uses these to recreate the same index set on the next
    #: snapshot.  Empty for indexes attached without recorded options.
    options: dict = field(default_factory=dict)

    def covers(self, query: RangeQuery) -> bool:
        return set(query.attributes) <= set(self.attributes)


@dataclass(frozen=True)
class ShardedQueryReport:
    """Outcome of one scatter-gather query execution."""

    index_name: str
    kind: str
    #: Global record ids, ascending — bit-identical to the unsharded result.
    record_ids: np.ndarray = field(repr=False)
    per_shard: tuple[ShardReportSlice, ...] = ()
    trace: obs.QueryTrace | None = field(default=None, repr=False)
    elapsed_ns: int | None = None

    @property
    def num_matches(self) -> int:
        """Number of matching records across all shards."""
        return len(self.record_ids)

    @property
    def num_pruned(self) -> int:
        """How many shards the planner skipped outright."""
        return sum(1 for s in self.per_shard if s.pruned)

    @property
    def skew(self) -> float:
        """Max over mean executed-shard latency (1.0 = perfectly even)."""
        executed = [s.elapsed_ns for s in self.per_shard if not s.pruned]
        if not executed:
            return 0.0
        mean = sum(executed) / len(executed)
        if mean == 0:
            return 0.0
        return max(executed) / mean

    def __repr__(self) -> str:
        return (
            f"ShardedQueryReport(index={self.index_name!r}, "
            f"matches={self.num_matches}, shards={len(self.per_shard)}, "
            f"pruned={self.num_pruned})"
        )


@dataclass(frozen=True)
class ShardedThreeValuedReport:
    """Outcome of one scatter-gather both-bounds (``semantics="both"``) query.

    Per-shard slices report the *possible* bound's match count (the pair's
    superset); shards pruned under the possible bound contribute to neither
    bound, since certain matches are a subset of possible matches.
    """

    index_name: str
    kind: str
    #: Global ids certain to match, ascending.
    certain_ids: np.ndarray = field(repr=False)
    #: Global ids that possibly match (superset of certain), ascending.
    possible_ids: np.ndarray = field(repr=False)
    per_shard: tuple[ShardReportSlice, ...] = ()
    elapsed_ns: int | None = None

    @property
    def num_certain(self) -> int:
        """Number of certain matches across all shards."""
        return len(self.certain_ids)

    @property
    def num_possible(self) -> int:
        """Number of possible matches across all shards."""
        return len(self.possible_ids)

    @property
    def num_pruned(self) -> int:
        """How many shards the planner skipped outright."""
        return sum(1 for s in self.per_shard if s.pruned)

    @property
    def possible_only_ids(self) -> np.ndarray:
        """Rows that are possible but not certain matches."""
        return np.setdiff1d(self.possible_ids, self.certain_ids)

    def __repr__(self) -> str:
        return (
            f"ShardedThreeValuedReport(index={self.index_name!r}, "
            f"certain={self.num_certain}, possible={self.num_possible}, "
            f"shards={len(self.per_shard)}, pruned={self.num_pruned})"
        )


class _Shard:
    """One shard: its global row ids and the database over its row slice."""

    __slots__ = ("shard_id", "global_ids", "database")

    def __init__(
        self,
        shard_id: int,
        global_ids: np.ndarray,
        database: IncompleteDatabase,
    ):
        self.shard_id = shard_id
        self.global_ids = global_ids
        self.database = database

    def to_global(self, local_ids: np.ndarray) -> np.ndarray:
        """Map shard-local record ids back to global ids."""
        return self.global_ids[np.asarray(local_ids, dtype=np.int64)]


def _finalize_executor(executor: ShardExecutor) -> None:
    """GC fallback: shut the fan-out executor down when the database drops.

    Referenced by ``weakref.finalize`` with the *executor* (never the
    database) as its argument, so the database itself stays collectible;
    process workers and shared-memory segments are too expensive to leak
    just because a caller forgot :meth:`ShardedDatabase.close`.
    """
    try:
        executor.close()
    except Exception:
        pass


class ShardedDatabase:
    """N-shard partitioned :class:`IncompleteDatabase` with scatter-gather.

    Parameters
    ----------
    table:
        The full table.  Rows are split by ``partitioner`` and each shard
        gets its own :class:`IncompleteDatabase` (and therefore its own
        namespaced sub-result cache).
    num_shards:
        How many shards to create (``>= 1``; 1 shard degenerates to the
        unsharded engine plus the scatter-gather bookkeeping).
    partitioner:
        A :class:`~repro.shard.partition.Partitioner` instance or registry
        name (``"contiguous"``, ``"round-robin"``, ``"missing-density"``).
    parallel:
        Legacy fan-out switch: picks the ``threads`` executor when true and
        ``sequential`` when false.  Ignored when ``executor`` (or the
        ``REPRO_SHARD_EXECUTOR`` environment variable) selects a backend.
    max_workers:
        Fan-out worker cap (threads or processes); must be ``>= 1``.
        Defaults to ``min(num_shards, 32)``.
    cache_bytes:
        Per-shard sub-result cache budget.
    executor:
        A :class:`~repro.shard.executor.ShardExecutor` instance or registry
        name (``"sequential"``, ``"threads"``, ``"processes"``).  ``None``
        consults ``REPRO_SHARD_EXECUTOR``, then falls back to ``parallel``.
    """

    def __init__(
        self,
        table: IncompleteTable,
        num_shards: int = 4,
        partitioner: str | Partitioner = "contiguous",
        parallel: bool = True,
        max_workers: int | None = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        executor: str | ShardExecutor | None = None,
    ):
        self._table = table
        self._partitioner = get_partitioner(partitioner)
        self._assignment = self._partitioner.partition(table, num_shards)
        self._init_common(
            parallel, max_workers, cache_bytes, executor,
            self._assignment.num_shards,
        )
        self._shards: list[_Shard] = [
            _Shard(
                shard_id,
                ids,
                IncompleteDatabase(table.take(ids), cache_bytes=cache_bytes),
            )
            for shard_id, ids in enumerate(self._assignment.shards)
        ]

    def _init_common(
        self, parallel, max_workers, cache_bytes, executor, num_shards
    ) -> None:
        if max_workers is not None and max_workers < 1:
            # `max_workers or default` used to swallow 0 silently and run
            # with the default pool size; reject it loudly instead.
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._parallel = parallel
        self._max_workers_explicit = max_workers is not None
        self._max_workers = (
            max_workers
            if max_workers is not None
            else min(num_shards, 32)
        )
        self._cache_bytes = cache_bytes
        #: Whole-table statistics, built lazily for the ranked answer mode.
        self._stats: TableStatistics | None = None
        self._index_meta: dict[str, _IndexMeta] = {}
        self._plan_memo: dict[tuple, tuple] = {}
        #: Bumped on every create/drop/attach so process workers can fence
        #: staleness even when an index is replaced by an equal-looking one.
        self._index_epoch = 0
        #: Per-shard on-disk paths recorded by the manifest loader; lets
        #: the process executor bootstrap workers by memory-mapping files.
        self._storage: dict[int, dict] | None = None
        self._closed = False
        #: Set by :meth:`freeze` once this database becomes a published
        #: MVCC snapshot; index DDL then raises instead of mutating state
        #: readers may have pinned.
        self._frozen = False
        #: Epoch number stamped by the serving layer's EpochManager when
        #: this database is published as a snapshot; None outside serving.
        self.snapshot_epoch: int | None = None
        self._executor_impl = resolve_executor(executor, parallel)
        self._finalizer = weakref.finalize(
            self, _finalize_executor, self._executor_impl
        )

    @classmethod
    def _restore(
        cls,
        table: IncompleteTable,
        assignment,
        shard_tables,
        parallel: bool = True,
        max_workers: int | None = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        executor: str | ShardExecutor | None = None,
    ) -> "ShardedDatabase":
        """Rebuild from a persisted assignment (see :mod:`repro.shard.manifest`).

        ``shard_tables`` are the per-shard tables exactly as serialized —
        using them instead of re-slicing keeps loaded indexes aligned with
        the rows they were built over.
        """
        self = cls.__new__(cls)
        self._table = table
        self._partitioner = None
        self._assignment = assignment
        self._init_common(
            parallel, max_workers, cache_bytes, executor,
            assignment.num_shards,
        )
        self._shards = [
            _Shard(
                shard_id,
                ids,
                IncompleteDatabase(shard_table, cache_bytes=cache_bytes),
            )
            for shard_id, (ids, shard_table) in enumerate(
                zip(assignment.shards, shard_tables)
            )
        ]
        return self

    # -- lifecycle -------------------------------------------------------------

    @property
    def table(self) -> IncompleteTable:
        """The full (unsharded) table."""
        return self._table

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self._shards)

    @property
    def num_records(self) -> int:
        """Total records across all shards."""
        return self._table.num_records

    @property
    def partitioner_name(self) -> str:
        """Registry name of the partitioner that built the shards."""
        return self._assignment.partitioner

    @property
    def shards(self) -> tuple[_Shard, ...]:
        """The shard holders, in shard-id order (read-only view)."""
        return tuple(self._shards)

    @property
    def executor(self) -> ShardExecutor:
        """The fan-out backend serving this database."""
        return self._executor_impl

    @property
    def statistics(self) -> TableStatistics:
        """Whole-table (unsharded) statistics, built lazily."""
        if self._stats is None:
            self._stats = TableStatistics(self._table)
        return self._stats

    def close(self) -> None:
        """Shut down the fan-out executor (pool, processes, shared memory).

        Closing twice raises :class:`~repro.errors.ShardError` — a second
        ``close()`` means two owners think they hold the handle, which is
        exactly the bug the error should surface.  The context-manager exit
        only closes a still-open database, so ``with`` blocks compose with
        an explicit early ``close()``.
        """
        if self._closed:
            raise ShardError(
                "this ShardedDatabase has already been closed"
            )
        self._closed = True
        self._finalizer.detach()
        self._executor_impl.close()

    def _ensure_open(self) -> None:
        if self._closed:
            raise ShardError("this ShardedDatabase has been closed")

    def freeze(self) -> "ShardedDatabase":
        """Mark this database an immutable snapshot; returns ``self``.

        A frozen database still answers every query (and its caches still
        fill), but index DDL raises :class:`~repro.errors.ShardError`.
        The serving layer freezes each database before publishing it as an
        epoch, so nothing can mutate state a pinned reader depends on —
        writers build a *new* database and publish that instead.
        """
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` has made this a published snapshot."""
        return self._frozen

    def _ensure_mutable(self) -> None:
        if self._frozen:
            raise ShardError(
                "this ShardedDatabase is a frozen snapshot (published as "
                f"epoch {self.snapshot_epoch}); build a new snapshot "
                "instead of mutating it"
            )

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc) -> None:
        if not self._closed:
            self.close()

    def __repr__(self) -> str:
        return (
            f"ShardedDatabase({self.num_records} records, "
            f"{self.num_shards} shards via {self.partitioner_name!r}, "
            f"indexes={sorted(self._index_meta)})"
        )

    # -- index management ------------------------------------------------------

    def create_index(
        self,
        name: str,
        kind: str,
        attributes=None,
        overwrite: bool = False,
        **options,
    ) -> None:
        """Build the same index on every shard (same name, kind, options)."""
        self._ensure_open()
        self._ensure_mutable()
        attached = None
        for shard in self._shards:
            attached = shard.database.create_index(
                name, kind, attributes, overwrite=overwrite, **options
            )
        self._index_meta[name] = _IndexMeta(
            kind=attached.kind, attributes=attached.attributes,
            options=dict(options),
        )
        self._plan_memo.clear()
        self._index_epoch += 1

    def drop_index(self, name: str) -> None:
        """Detach an index from every shard."""
        self._ensure_open()
        self._ensure_mutable()
        if name not in self._index_meta:
            raise ReproError(f"no index named {name!r}")
        for shard in self._shards:
            shard.database.drop_index(name)
        del self._index_meta[name]
        self._plan_memo.clear()
        self._index_epoch += 1

    def _attach_shard_indexes(
        self, name: str, kind: str, attributes, options=None
    ) -> None:
        """Record an index registered shard-by-shard (manifest loader)."""
        self._index_meta[name] = _IndexMeta(
            kind=kind, attributes=tuple(attributes),
            options=dict(options or {}),
        )
        self._plan_memo.clear()
        self._index_epoch += 1

    @property
    def index_names(self) -> list[str]:
        """Names of the fanned-out indexes, sorted."""
        return sorted(self._index_meta)

    # -- planning --------------------------------------------------------------

    def _plan_sharded(
        self, query: RangeQuery, semantics: MissingSemantics
    ) -> tuple[str | None, list[CostEstimate], list[CostEstimate | None]]:
        """Whole-database plan: (chosen name, merged ranking, per-shard picks).

        Per-shard rankings are merged with
        :func:`~repro.core.planner.combine_shard_estimates`; when no index
        is costable on every shard the engine's static preference order
        breaks the tie, and with no covering index at all the scan fallback
        (``None``) is chosen.  Memoized per ``(query, semantics)`` until the
        index set changes.
        """
        key = (query, semantics)
        memo = self._plan_memo.get(key)
        if memo is not None:
            return memo
        covering = [
            name
            for name, meta in self._index_meta.items()
            if meta.covers(query)
        ]
        if not covering:
            result = (None, [], [None] * self.num_shards)
            self._plan_memo[key] = result
            return result
        per_shard_rankings = [
            rank_plans(
                [shard.database.get_index(n) for n in covering],
                query,
                semantics,
            )
            for shard in self._shards
        ]
        merged = combine_shard_estimates(per_shard_rankings)
        if merged:
            chosen = merged[0].index_name
        else:
            rank = {kind: pos for pos, kind in enumerate(_PREFERENCE)}
            chosen = min(
                covering,
                key=lambda n: rank.get(
                    self._index_meta[n].kind, len(rank)
                ),
            )
        per_shard_estimates: list[CostEstimate | None] = [
            next((p for p in plans if p.index_name == chosen), None)
            for plans in per_shard_rankings
        ]
        if len(self._plan_memo) > 4096:
            self._plan_memo.clear()
        result = (chosen, merged, per_shard_estimates)
        self._plan_memo[key] = result
        return result

    def _resolve_plan(
        self,
        query: RangeQuery,
        semantics: MissingSemantics,
        using: str | None,
    ) -> tuple[str | None, bool, list[CostEstimate | None]]:
        """Chosen index name, forced flag, per-shard cost estimates."""
        if using is not None:
            meta = self._index_meta.get(using)
            if meta is None:
                raise ReproError(f"no index named {using!r}")
            if not meta.covers(query):
                raise QueryError(
                    f"index {using!r} does not cover attributes "
                    f"{sorted(set(query.attributes) - set(meta.attributes))}"
                )
            return using, True, [None] * self.num_shards
        chosen, _, per_shard = self._plan_sharded(query, semantics)
        return chosen, False, per_shard

    # -- pruning ---------------------------------------------------------------

    def _shard_can_match(
        self,
        shard: _Shard,
        query: RangeQuery,
        semantics: MissingSemantics,
    ) -> bool:
        """Exact zone-map check: can this shard contain any match?

        A shard is prunable when, for some query attribute, its exact value
        histogram shows zero records inside the interval (plus zero missing
        records under ``missing-is-a-match``).  Out-of-domain or unknown
        attributes are never pruned, so invalid queries surface the same
        :class:`~repro.errors.DomainError` / :class:`~repro.errors.QueryError`
        the unsharded engine raises.
        """
        statistics = shard.database.statistics
        for name, interval in query.items():
            try:
                attr = statistics.attribute(name)
            except Exception:
                return True
            if interval.lo < 1 or interval.hi > attr.cardinality:
                return True
            possible = int(attr.counts[interval.lo : interval.hi + 1].sum())
            if semantics is MissingSemantics.IS_MATCH:
                possible += int(attr.counts[0])
            if possible == 0:
                return False
        return True

    # -- execution -------------------------------------------------------------

    @staticmethod
    def _normalize(query) -> RangeQuery:
        return (
            query
            if isinstance(query, RangeQuery)
            else RangeQuery.from_bounds(query)
        )

    def execute(
        self,
        query,
        semantics: MissingSemantics = MissingSemantics.IS_MATCH,
        using: str | None = None,
        trace: bool = False,
    ) -> ShardedQueryReport:
        """Scatter-gather execution of one query.

        Plans once against the merged shard statistics, prunes shards whose
        histograms rule out any match, fans the survivors out, and merges
        local ids back into one ascending global id array.  With
        ``trace=True`` the report carries a root span whose children are the
        per-shard query traces (one subtree per executed shard, tagged with
        its shard id).  With ``semantics="both"`` each shard computes its
        (certain, possible) pair in one pass and a
        :class:`ShardedThreeValuedReport` comes back.
        """
        self._ensure_open()
        query = self._normalize(query)
        semantics = resolve_semantics(semantics)
        if semantics is BOTH:
            return self._execute_both(query, using)
        start = time.perf_counter_ns()
        observing = obs.enabled()
        recorder = obs.get_recorder()
        recording = recorder.active
        tracing = trace or (recording and recorder.wants_trace)
        qtrace = (
            obs.QueryTrace(
                "sharded_query",
                query=repr(query),
                semantics=semantics.value,
                shards=self.num_shards,
            )
            if tracing
            else None
        )
        plan_start = time.perf_counter_ns()
        chosen, forced, per_shard_estimates = self._resolve_plan(
            query, semantics, using
        )
        survivors: list[_Shard] = []
        pruned_ids: list[int] = []
        for shard in self._shards:
            if self._shard_can_match(shard, query, semantics):
                survivors.append(shard)
            else:
                pruned_ids.append(shard.shard_id)
        if qtrace is not None:
            with qtrace.span("plan") as plan_span:
                plan_span.start_ns = plan_start
                plan_span.set("chosen", chosen if chosen else "<scan>")
                plan_span.set("forced", forced)
                plan_span.set("pruned_shards", pruned_ids)
        if observing:
            obs.record("shard.queries")
            obs.record("shard.pruned", len(pruned_ids))

        tasks = [
            ShardQueryTask(
                shard_id=shard.shard_id,
                query=query,
                semantics=semantics,
                index_name=chosen,
                estimate=(
                    per_shard_estimates[shard.shard_id]
                    if chosen is not None
                    else None
                ),
                forced=forced,
                trace=tracing,
            )
            for shard in survivors
        ]
        fan_start = time.perf_counter_ns()
        outcomes = self._executor_impl.run_query_tasks(self, tasks)
        fan_ns = time.perf_counter_ns() - fan_start
        if observing:
            obs.record("shard.fanout_tasks", len(tasks))
        merge_start = time.perf_counter_ns()
        parts = [
            shard.to_global(outcome.record_ids)
            for shard, outcome in zip(survivors, outcomes)
        ]
        if parts:
            merged = np.sort(np.concatenate(parts))
        else:
            merged = np.empty(0, dtype=np.int64)
        merge_ns = time.perf_counter_ns() - merge_start

        slices = {
            shard_id: ShardReportSlice(shard_id, True, 0, 0)
            for shard_id in pruned_ids
        }
        for shard, outcome in zip(survivors, outcomes):
            slices[shard.shard_id] = ShardReportSlice(
                shard.shard_id,
                False,
                len(outcome.record_ids),
                outcome.elapsed_ns,
            )
            if qtrace is not None and outcome.trace_root is not None:
                outcome.trace_root.set("shard", shard.shard_id)
                qtrace.root.children.append(outcome.trace_root)
        per_shard = tuple(
            slices[shard_id] for shard_id in sorted(slices)
        )
        elapsed_ns = time.perf_counter_ns() - start
        if observing:
            obs.observe("shard.fanout_ns", fan_ns)
            obs.observe("shard.merge_ns", merge_ns)
            for outcome in outcomes:
                obs.observe("shard.task_ns", outcome.elapsed_ns)
        result = ShardedQueryReport(
            index_name=chosen if chosen else "<scan>",
            kind=(
                self._index_meta[chosen].kind if chosen else "scan"
            ),
            record_ids=merged,
            per_shard=per_shard,
            trace=qtrace if trace else None,
            elapsed_ns=elapsed_ns,
        )
        if observing:
            obs.observe("shard.skew", result.skew)
        if qtrace is not None:
            qtrace.root.set("index", result.index_name)
            qtrace.root.set("matches", result.num_matches)
            qtrace.root.set("pruned", len(pruned_ids))
            qtrace.close()
        if recording:
            recorder.record_query(
                source="shard",
                batch=False,
                query=query,
                semantics=semantics,
                index=result.index_name,
                kind=result.kind,
                matches=result.num_matches,
                elapsed_ns=elapsed_ns,
                trace=qtrace,
                shards_executed=len(survivors),
                shards_pruned=len(pruned_ids),
            )
        return result

    def _execute_both(
        self, query: RangeQuery, using: str | None
    ) -> ShardedThreeValuedReport:
        """Scatter-gather both-bounds execution (sequential fan-out).

        Plans once (costed under the possible bound — one plan serves the
        pair), prunes with the *is-a-match* histogram check (no possible
        match rules out both bounds, since certain is a subset of
        possible), then runs each surviving shard's one-pass both-bounds
        engine path and merges the two global id sets independently.
        """
        start = time.perf_counter_ns()
        observing = obs.enabled()
        costing = semantics_for_costing(BOTH)
        chosen, forced, _ = self._resolve_plan(query, costing, using)
        certain_parts: list[np.ndarray] = []
        possible_parts: list[np.ndarray] = []
        slices: list[ShardReportSlice] = []
        executed = 0
        for shard in self._shards:
            if not self._shard_can_match(
                shard, query, MissingSemantics.IS_MATCH
            ):
                slices.append(ShardReportSlice(shard.shard_id, True, 0, 0))
                continue
            task_start = time.perf_counter_ns()
            report = shard.database.execute(query, BOTH, chosen)
            task_ns = time.perf_counter_ns() - task_start
            certain_parts.append(shard.to_global(report.certain_ids))
            possible_parts.append(shard.to_global(report.possible_ids))
            slices.append(ShardReportSlice(
                shard.shard_id, False, report.num_possible, task_ns,
            ))
            executed += 1
        certain = (
            np.sort(np.concatenate(certain_parts))
            if certain_parts
            else np.empty(0, dtype=np.int64)
        )
        possible = (
            np.sort(np.concatenate(possible_parts))
            if possible_parts
            else np.empty(0, dtype=np.int64)
        )
        elapsed_ns = time.perf_counter_ns() - start
        if observing:
            obs.record("shard.queries")
            obs.record("shard.pruned", len(slices) - executed)
            obs.record("shard.fanout_tasks", executed)
        return ShardedThreeValuedReport(
            index_name=chosen if chosen else "<scan>",
            kind=self._index_meta[chosen].kind if chosen else "scan",
            certain_ids=certain,
            possible_ids=possible,
            per_shard=tuple(slices),
            elapsed_ns=elapsed_ns,
        )

    def execute_batch(
        self,
        queries,
        semantics: MissingSemantics = MissingSemantics.IS_MATCH,
        using: str | None = None,
        trace: bool = False,
    ) -> list[ShardedQueryReport]:
        """Scatter-gather execution of a workload.

        Every distinct query is planned once at the sharded level; each
        shard then runs its surviving (un-pruned) slice of the workload
        through the engine's grouped batch executor with that shard's own
        sub-result cache, and per-query results merge back in submission
        order.  With ``semantics="both"`` each query runs through the
        sequential both-bounds fan-out (plans are still memoized across the
        workload) and :class:`ShardedThreeValuedReport` objects come back.
        """
        self._ensure_open()
        normalized = [self._normalize(q) for q in queries]
        semantics = resolve_semantics(semantics)
        if semantics is BOTH:
            return [self._execute_both(q, using) for q in normalized]
        observing = obs.enabled()
        recorder = obs.get_recorder()
        plans = {}
        for query in normalized:
            if query not in plans:
                plans[query] = self._resolve_plan(query, semantics, using)
        prunable = {}
        for query in plans:
            prunable[query] = [
                not self._shard_can_match(shard, query, semantics)
                for shard in self._shards
            ]

        tasks = []
        for shard in self._shards:
            positions = tuple(
                pos
                for pos, query in enumerate(normalized)
                if not prunable[query][shard.shard_id]
            )
            sub_queries = tuple(normalized[pos] for pos in positions)
            sub_plans = []
            for query in sub_queries:
                chosen, forced, per_shard_estimates = plans[query]
                if chosen is None:
                    sub_plans.append((None, None, False))
                else:
                    sub_plans.append((
                        chosen,
                        per_shard_estimates[shard.shard_id],
                        forced,
                    ))
            tasks.append(ShardBatchTask(
                shard_id=shard.shard_id,
                positions=positions,
                queries=sub_queries,
                plans=tuple(sub_plans),
                semantics=semantics,
                trace=trace,
            ))

        fan_start = time.perf_counter_ns()
        outcomes = self._executor_impl.run_batch_tasks(self, tasks)
        fan_ns = time.perf_counter_ns() - fan_start
        if observing:
            obs.record("shard.fanout_tasks", len(tasks))

        parts: list[list[np.ndarray]] = [[] for _ in normalized]
        slices: list[dict[int, ShardReportSlice]] = [
            {} for _ in normalized
        ]
        for shard, outcome in zip(self._shards, outcomes):
            for pos, (record_ids, task_ns) in zip(
                outcome.positions, outcome.results
            ):
                parts[pos].append(shard.to_global(record_ids))
                slices[pos][shard.shard_id] = ShardReportSlice(
                    shard.shard_id,
                    False,
                    len(record_ids),
                    task_ns,
                )
        out: list[ShardedQueryReport] = []
        for pos, query in enumerate(normalized):
            chosen, _, _ = plans[query]
            for shard_id, was_pruned in enumerate(prunable[query]):
                if was_pruned:
                    slices[pos][shard_id] = ShardReportSlice(
                        shard_id, True, 0, 0
                    )
            if parts[pos]:
                merged = np.sort(np.concatenate(parts[pos]))
            else:
                merged = np.empty(0, dtype=np.int64)
            report = ShardedQueryReport(
                index_name=chosen if chosen else "<scan>",
                kind=(
                    self._index_meta[chosen].kind
                    if chosen
                    else "scan"
                ),
                record_ids=merged,
                per_shard=tuple(
                    slices[pos][sid] for sid in sorted(slices[pos])
                ),
            )
            if recorder.active:
                executed = [s for s in report.per_shard if not s.pruned]
                recorder.record_query(
                    source="shard",
                    batch=True,
                    query=query,
                    semantics=semantics,
                    index=report.index_name,
                    kind=report.kind,
                    matches=report.num_matches,
                    # No whole-query wall clock in the batched fan-out;
                    # the summed per-shard task time is the best proxy.
                    elapsed_ns=sum(s.elapsed_ns for s in executed),
                    shards_executed=len(executed),
                    shards_pruned=report.num_pruned,
                )
            out.append(report)
        if observing:
            obs.record("shard.batches")
            obs.record("shard.batch_queries", len(normalized))
            obs.observe("shard.fanout_ns", fan_ns)
            total_pruned = sum(
                sum(flags) for flags in prunable.values()
            )
            obs.record("shard.pruned", total_pruned)
        return out

    # -- conveniences ----------------------------------------------------------

    def query(
        self,
        query,
        semantics: MissingSemantics = MissingSemantics.IS_MATCH,
        using: str | None = None,
    ) -> ShardedQueryReport:
        """Alias of :meth:`execute` without tracing."""
        return self.execute(query, semantics, using)

    def count(
        self,
        query,
        semantics: MissingSemantics = MissingSemantics.IS_MATCH,
        using: str | None = None,
    ):
        """Number of records matching a query, summed across shards.

        With ``semantics="both"`` returns the ``(certain, possible)``
        count pair instead of a single int.
        """
        report = self.execute(query, semantics, using)
        if isinstance(report, ShardedThreeValuedReport):
            return report.num_certain, report.num_possible
        return report.num_matches

    def fetch(
        self,
        query,
        semantics: MissingSemantics = MissingSemantics.IS_MATCH,
        using: str | None = None,
    ) -> IncompleteTable:
        """Materialize the matching rows (global order) as a new table.

        Requires a single semantics: a both-bounds answer is two row sets,
        so there is no one table to materialize — fetch the bound you want.
        """
        semantics = resolve_semantics(semantics)
        if semantics is BOTH:
            raise QueryError(
                "fetch needs a single semantics ('is_match' or 'not_match'); "
                "a both-bounds answer has two row sets"
            )
        report = self.execute(query, semantics, using)
        return self._table.take(report.record_ids)

    def execute_ranked(
        self,
        query,
        threshold: float = 0.0,
        limit: int | None = None,
        using: str | None = None,
    ) -> RankedReport:
        """Probabilistic answers across all shards, ranked by match chance.

        Runs the both-bounds scatter-gather, then scores possible-only rows
        against the *whole-table* value histograms (so probabilities match
        the unsharded engine's bit-for-bit regardless of how rows were
        partitioned).  Same contract as
        :meth:`~repro.core.engine.IncompleteDatabase.execute_ranked`.
        """
        query = self._normalize(query)
        report = self.execute(query, BOTH, using)
        ids, probabilities, num_certain = rank_both_bounds(
            self._table,
            self.statistics,
            query,
            report.certain_ids,
            report.possible_ids,
            threshold,
            limit,
        )
        if obs.enabled():
            obs.record("semantics.ranked_queries")
        return RankedReport(
            index_name=report.index_name,
            kind=report.kind,
            record_ids=ids,
            probabilities=probabilities,
            num_certain=num_certain,
        )

    def query_predicate(
        self,
        predicate,
        semantics: MissingSemantics = MissingSemantics.IS_MATCH,
        using: str | None = None,
    ) -> ShardedQueryReport:
        """Scatter-gather execution of a boolean predicate (AND/OR/NOT).

        Each shard evaluates the predicate against its own row slice (the
        engine picks a predicate-capable index or falls back to a scan);
        local ids map back through ``global_ids`` and merge sorted, so the
        result is bit-identical to the unsharded engine's
        :meth:`~repro.core.engine.IncompleteDatabase.query_predicate`.
        Predicates are not planned through the cost model or pruned — a
        NOT over a pruned-out shard could still match — so every shard
        executes.  With ``semantics="both"`` each shard evaluates the tree
        three-valued in one pass and a :class:`ShardedThreeValuedReport`
        comes back.
        """
        self._ensure_open()
        semantics = resolve_semantics(semantics)
        both = semantics is BOTH
        start = time.perf_counter_ns()
        parts = []
        possible_parts = []
        slices = []
        names = set()
        kinds = set()
        for shard in self._shards:
            task_start = time.perf_counter_ns()
            report = shard.database.query_predicate(
                predicate, semantics, using=using
            )
            task_ns = time.perf_counter_ns() - task_start
            if both:
                parts.append(shard.to_global(report.certain_ids))
                possible_parts.append(shard.to_global(report.possible_ids))
                matched = report.num_possible
            else:
                parts.append(shard.to_global(report.record_ids))
                matched = report.num_matches
            slices.append(ShardReportSlice(
                shard.shard_id, False, matched, task_ns,
            ))
            names.add(report.index_name)
            kinds.add(report.kind)
        merged = (
            np.sort(np.concatenate(parts))
            if parts
            else np.empty(0, dtype=np.int64)
        )
        elapsed_ns = time.perf_counter_ns() - start
        if obs.enabled():
            obs.record("shard.queries")
            obs.record("shard.fanout_tasks", len(self._shards))
        index_name = names.pop() if len(names) == 1 else "<mixed>"
        kind = kinds.pop() if len(kinds) == 1 else "mixed"
        if both:
            possible = (
                np.sort(np.concatenate(possible_parts))
                if possible_parts
                else np.empty(0, dtype=np.int64)
            )
            return ShardedThreeValuedReport(
                index_name=index_name,
                kind=kind,
                certain_ids=merged,
                possible_ids=possible,
                per_shard=tuple(slices),
                elapsed_ns=elapsed_ns,
            )
        return ShardedQueryReport(
            index_name=index_name,
            kind=kind,
            record_ids=merged,
            per_shard=tuple(slices),
            elapsed_ns=elapsed_ns,
        )

    def explain(
        self,
        query,
        semantics: MissingSemantics = MissingSemantics.IS_MATCH,
    ) -> str:
        """Human-readable sharded plan: merged costs plus pruning decisions."""
        query = self._normalize(query)
        semantics = resolve_semantics(semantics)
        costing = semantics_for_costing(semantics)
        chosen, merged, _ = self._plan_sharded(query, costing)
        lines = [
            f"ShardedQuery: {query!r}",
            f"  semantics: {semantics.value}",
            f"  shards: {self.num_shards} ({self.partitioner_name})",
        ]
        if semantics is BOTH:
            lines.append(
                "  bounds: one plan, costed under is_match (superset bound)"
            )
        if merged:
            lines.append("  merged plans (items summed over shards):")
            for estimate in merged:
                marker = "->" if estimate.index_name == chosen else "  "
                lines.append(
                    f"   {marker} {estimate.index_name} "
                    f"({estimate.kind}): {estimate.items:,.0f} items "
                    f"[{estimate.detail}]"
                )
        elif chosen is not None:
            lines.append(
                f"  chosen by preference order: {chosen} "
                f"({self._index_meta[chosen].kind})"
            )
        else:
            lines.append("  no covering index; sequential scan per shard")
        pruned = [
            shard.shard_id
            for shard in self._shards
            if not self._shard_can_match(shard, query, costing)
        ]
        lines.append(
            f"  pruned shards: {pruned if pruned else '(none)'} "
            f"of {self.num_shards}"
        )
        return "\n".join(lines)

    # -- introspection ---------------------------------------------------------

    def cache_stats(self) -> CacheStats:
        """Aggregate sub-result cache stats summed across shards."""
        totals = [shard.database.sub_result_cache.stats() for shard in self._shards]
        return CacheStats(
            hits=sum(s.hits for s in totals),
            misses=sum(s.misses for s in totals),
            stores=sum(s.stores for s in totals),
            evictions=sum(s.evictions for s in totals),
            invalidations=sum(s.invalidations for s in totals),
            entries=sum(s.entries for s in totals),
            bytes=sum(s.bytes for s in totals),
        )

    def invalidate_cache(self, index_name: str | None = None) -> int:
        """Drop cached sub-results on every shard; returns entries dropped."""
        return sum(
            shard.database.invalidate_cache(index_name)
            for shard in self._shards
        )

    def summary(self) -> str:
        """Multi-line overview: shards, per-shard sizes, indexes, caches."""
        from repro.bitvector.kernels import get_backend

        lines = [
            f"ShardedDatabase: {self.num_records} records in "
            f"{self.num_shards} shards ({self.partitioner_name}), "
            f"{len(self._table.schema.names)} attributes",
            f"  bitvector kernels: {get_backend().name} backend",
            f"  fan-out executor: {self._executor_impl.name}",
        ]
        if not self._index_meta:
            lines.append("  indexes: (none; queries fall back to scan)")
        else:
            lines.append("  indexes (fanned out to every shard):")
            for name in sorted(self._index_meta):
                meta = self._index_meta[name]
                attrs = ", ".join(meta.attributes)
                lines.append(f"    {name} ({meta.kind}) on [{attrs}]")
        for shard in self._shards:
            lines.append(
                f"  shard {shard.shard_id}: "
                f"{shard.database.table.num_records} records"
            )
        stats = self.cache_stats()
        lines.append(
            f"  sub-result caches ({self.num_shards} shards): "
            f"{stats.entries} entries, {stats.bytes} bytes, "
            f"hit rate {stats.hit_rate:.1%} "
            f"({stats.hits} hits / {stats.misses} misses)"
        )
        return "\n".join(lines)
