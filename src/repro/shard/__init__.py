"""Partitioned storage and scatter-gather execution for incomplete tables.

See :mod:`repro.shard.sharded` for the execution model, and
``docs/sharding.md`` for the manifest format and partitioner guide.
"""

from repro.shard.executor import (
    EXECUTOR_ENV_VAR,
    EXECUTORS,
    ProcessShardExecutor,
    SequentialShardExecutor,
    ShardExecutor,
    ThreadShardExecutor,
    resolve_executor,
)
from repro.shard.manifest import MANIFEST_NAME, load_sharded, save_sharded
from repro.shard.partition import (
    PARTITIONERS,
    ContiguousPartitioner,
    MissingDensityPartitioner,
    Partitioner,
    RoundRobinPartitioner,
    ShardAssignment,
    get_partitioner,
)
from repro.shard.sharded import (
    ShardedDatabase,
    ShardedQueryReport,
    ShardReportSlice,
)

__all__ = [
    "ContiguousPartitioner",
    "EXECUTORS",
    "EXECUTOR_ENV_VAR",
    "MANIFEST_NAME",
    "MissingDensityPartitioner",
    "PARTITIONERS",
    "Partitioner",
    "ProcessShardExecutor",
    "RoundRobinPartitioner",
    "SequentialShardExecutor",
    "ShardAssignment",
    "ShardExecutor",
    "ShardReportSlice",
    "ShardedDatabase",
    "ShardedQueryReport",
    "ThreadShardExecutor",
    "get_partitioner",
    "load_sharded",
    "save_sharded",
]
