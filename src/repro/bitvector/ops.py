"""Generic helpers over any bitvector representation.

Every codec in this package (:class:`BitVector`, :class:`WahBitVector`,
:class:`BbcBitVector`) shares the operator protocol ``& | ^ ~``, ``count()``,
``to_indices()`` and ``nbytes()``.  The helpers here operate on that
protocol, so the bitmap indexes are agnostic to the chosen compression.

:class:`OpCounter` tallies logical operations and operand bitmaps touched;
the paper explains all of its Figure 5 timing trends through the *number of
bitvectors used* per query dimension, so the experiment harness records
these counts alongside wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, TypeVar

import numpy as np

from repro.bitvector.bbc import BbcBitVector
from repro.bitvector.bitvector import BitVector
from repro.bitvector.wah import WahBitVector
from repro.errors import ReproError


class BitVectorLike(Protocol):
    """Structural protocol implemented by all bitvector codecs."""

    @property
    def nbits(self) -> int: ...

    def __and__(self, other): ...
    def __or__(self, other): ...
    def __xor__(self, other): ...
    def __invert__(self): ...
    def count(self) -> int: ...
    def to_indices(self) -> np.ndarray: ...
    def nbytes(self) -> int: ...
    def words32(self) -> int: ...


V = TypeVar("V", bound=BitVectorLike)

#: Codec name -> constructor from a boolean array.
CODECS = {
    "none": BitVector.from_bools,
    "wah": WahBitVector.from_bools,
    "bbc": BbcBitVector.from_bools,
}


def make_bitvector(bools: np.ndarray, codec: str):
    """Build a bitvector of the requested codec from a boolean array."""
    try:
        factory = CODECS[codec]
    except KeyError:
        raise ReproError(
            f"unknown bitvector codec {codec!r}; expected one of {sorted(CODECS)}"
        )
    return factory(bools)


def make_zeros(nbits: int, codec: str):
    """An all-zero bitvector of the requested codec."""
    return make_bitvector(np.zeros(nbits, dtype=bool), codec)


def words_of(vec) -> int:
    """Number of 32-bit machine words an operand occupies.

    This is the unit of the paper's implicit cost model: WAH logical
    operations "only access words", so the work a query does is proportional
    to the stored words of its operands.  Each codec reports its own size
    through the ``words32()`` protocol method (verbatim bitvectors count
    their full word extent; WAH counts compressed words; BBC counts payload
    bytes scaled to words), so new codecs and backends participate in the
    cost model without registering here.
    """
    sizer = getattr(vec, "words32", None)
    if sizer is None:
        raise ReproError(f"cannot size operand of type {type(vec).__name__}")
    return sizer()


@dataclass
class OpCounter:
    """Tally of bitmap work done while answering queries.

    The paper explains its Figure 5 trends through the *number of bitvectors
    used* per query dimension, and its real-data result through bitmaps
    "performing bit operations over substantially fewer words" than the
    VA-file scans.  This counter tracks both quantities.
    """

    #: Bitmap vectors read as operands (the paper's "bitvectors used").
    bitmaps_touched: int = 0
    #: Binary logical operations (AND/OR/XOR) performed.
    binary_ops: int = 0
    #: Complement (NOT) operations performed.
    not_ops: int = 0
    #: Cost-model items processed: 32-bit words for bitmap logical
    #: operations, record approximations for VA-file scans.  This is the
    #: paper's own cross-technique comparison currency (Section 5.3).
    words_processed: int = 0
    #: Per-query bitmap counts, appended by the executors.
    per_query: list[int] = field(default_factory=list)

    def record_binary(self, left, right) -> None:
        """Account one binary logical operation on two operands."""
        self.binary_ops += 1
        self.words_processed += words_of(left) + words_of(right)

    def record_not(self, operand) -> None:
        """Account one complement operation."""
        self.not_ops += 1
        self.words_processed += words_of(operand)

    def merge(self, other: "OpCounter") -> None:
        """Accumulate another counter into this one."""
        self.bitmaps_touched += other.bitmaps_touched
        self.binary_ops += other.binary_ops
        self.not_ops += other.not_ops
        self.words_processed += other.words_processed
        self.per_query.extend(other.per_query)

    def reset(self) -> None:
        """Zero all tallies."""
        self.bitmaps_touched = 0
        self.binary_ops = 0
        self.not_ops = 0
        self.words_processed = 0
        self.per_query.clear()


def big_or(operands: Sequence[V], counter: OpCounter | None = None) -> V:
    """OR together one or more bitvectors.

    Two or fewer WAH operands (and all non-WAH codecs) use pairwise ops.
    Wider WAH unions go through :meth:`WahBitVector.or_many`, which decodes
    each operand once into an accumulator so the accumulating result's
    density does not tax every subsequent operation; its cost-model charge
    is the operands' compressed words plus the encoded result.
    """
    if not operands:
        raise ReproError("big_or requires at least one operand")
    if len(operands) > 2 and all(
        isinstance(op, WahBitVector) for op in operands
    ):
        result = WahBitVector.or_many(list(operands))
        if counter is not None:
            counter.bitmaps_touched += len(operands)
            counter.binary_ops += len(operands) - 1
            counter.words_processed += sum(
                words_of(op) for op in operands
            ) + words_of(result)
        return result
    result = operands[0]
    for operand in operands[1:]:
        if counter is not None:
            counter.record_binary(result, operand)
        result = result | operand
    if counter is not None:
        counter.bitmaps_touched += len(operands)
    return result


def big_and(operands: Sequence[V], counter: OpCounter | None = None) -> V:
    """AND together one or more bitvectors (pairwise, left to right)."""
    if not operands:
        raise ReproError("big_and requires at least one operand")
    result = operands[0]
    for operand in operands[1:]:
        if counter is not None:
            counter.record_binary(result, operand)
        result = result & operand
    return result
