"""Pluggable word-level kernels behind the compressed bitvector codecs.

The paper's central performance claim is that compressed bitmap query
execution "only accesses words".  This module is where those word accesses
actually happen: every WAH/BBC encode, decode, logical operation, and
population count is implemented here as a *kernel* over numpy word arrays
(``uint32`` WAH words, ``uint8`` BBC bytes), and the codec classes in
:mod:`repro.bitvector.wah` / :mod:`repro.bitvector.bbc` dispatch to the
active :class:`KernelBackend`.

Three backends are provided:

``python``
    The reference implementation: the run-pair loop (`_RunReader` /
    `_Builder`) and byte-wise BBC coder, one Python step per word.  Kept
    verbatim so every other backend can be checked word-for-word against
    it, and selectable for debugging via ``REPRO_BITVECTOR_BACKEND=python``.

``numpy``
    The default.  Logical ops use a vectorized run-merge: operand word
    streams are turned into (value, length) run arrays, run boundaries are
    merged with one ``union1d``/``searchsorted`` pass, and the result is
    re-encoded with scatter writes — O(stored words), never materializing
    the verbatim bitmap, so even a ``MAX_FILL_GROUPS``-long fill costs a
    handful of array ops.  Dense operands (mostly literals) switch to a
    decode → ufunc → re-encode path, which is faster when runs are short.

``numba``
    Registered only when :mod:`numba` is importable: the reference run-pair
    loop compiled with ``@njit``.  Auto-selected at import when present.

Every backend produces **word-identical** output — the same ``uint32``
words, not merely the same bits — because every kernel emits the canonical
WAH encoding (adjacent fills merged, all-zero/all-one literals folded into
fills, over-long fills split ``[MAX] * (k-1) + [remainder]``).  The
property tests in ``tests/bitvector/test_kernels.py`` enforce this across
all registered backends.

Backend selection: the ``REPRO_BITVECTOR_BACKEND`` environment variable
wins, then ``numba`` when importable, then ``numpy``.  At runtime use
:func:`set_backend` / :func:`use_backend`; see ``docs/kernels.md``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from repro.errors import CorruptIndexError, ReproError

__all__ = [
    "FILL_BIT_FLAG",
    "FILL_FLAG",
    "GROUP_BITS",
    "KernelBackend",
    "LITERAL_MASK",
    "MAX_FILL_GROUPS",
    "WORD_BITS",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]

# -- WAH word layout (see repro.bitvector.wah for the format description) ----

#: Bits per WAH word.
WORD_BITS = 32
#: Literal payload bits per word (the paper's ``w - 1``).
GROUP_BITS = WORD_BITS - 1
#: Mask selecting a literal payload.
LITERAL_MASK = (1 << GROUP_BITS) - 1
#: MSB flag marking a fill word.
FILL_FLAG = 1 << (WORD_BITS - 1)
#: Second-MSB flag holding a fill word's bit value.
FILL_BIT_FLAG = 1 << (WORD_BITS - 2)
#: Maximum number of groups one fill word can represent (``2**(w-2) - 1``).
MAX_FILL_GROUPS = FILL_BIT_FLAG - 1

_ALL_ONES_GROUP = LITERAL_MASK

# -- BBC token layout (see repro.bitvector.bbc) ------------------------------

BBC_FILL_FLAG = 0x80
BBC_FILL_BIT = 0x40
BBC_MAX_FILL_RUN = 0x3F  # 63 bytes per fill token
BBC_MAX_LITERAL_RUN = 0x7F  # 127 bytes per literal token

#: Opcode names shared by every backend's ``wah_binary``.
WAH_OPCODES = ("and", "or", "xor", "andnot")

_EMPTY_U32 = np.empty(0, dtype=np.uint32)
_EMPTY_U8 = np.empty(0, dtype=np.uint8)


def wah_stream_lengths(words: np.ndarray) -> np.ndarray:
    """Groups covered by each word of a WAH stream (int64).

    Raises :class:`CorruptIndexError` on zero-length fill words — the same
    malformed streams the reference run reader rejects — so validation is
    backend-independent.
    """
    is_fill = (words & np.uint32(FILL_FLAG)) != 0
    lengths = np.where(
        is_fill, words & np.uint32(MAX_FILL_GROUPS), 1
    ).astype(np.int64)
    if bool((lengths[is_fill] == 0).any()):
        raise CorruptIndexError("WAH fill word with zero length")
    return lengths


def _wah_run_view(words: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-word ``(group value, run length)`` arrays for a WAH stream."""
    is_fill = words >= np.uint32(FILL_FLAG)  # unsigned compare: MSB set
    # A fill's group value is 0 or ALL_ONES depending on the fill bit; a
    # literal's is the word itself (its MSB is clear).  The multiply keeps
    # everything in one where instead of a nested pair.
    fill_values = ((words >> np.uint32(WORD_BITS - 2)) & np.uint32(1)) * np.uint32(
        _ALL_ONES_GROUP
    )
    values = np.where(is_fill, fill_values, words)
    lengths = np.where(
        is_fill, (words & np.uint32(MAX_FILL_GROUPS)).astype(np.int64), 1
    )
    return values, lengths


def _encode_runs(
    values: np.ndarray, lengths: np.ndarray, merged: bool = False
) -> np.ndarray:
    """Canonical WAH words for a sequence of (group value, run length) runs.

    Adjacent equal-valued runs are merged (skipped when the caller already
    guarantees adjacent-distinct values via ``merged=True``), 0/all-ones
    runs become fills (split ``[MAX] * (k-1) + [remainder]``, matching the
    reference builder), and literal-valued runs emit one word per group.
    Run lengths are int64 so fills longer than ``MAX_FILL_GROUPS`` never
    overflow.
    """
    if len(values) == 0:
        return _EMPTY_U32
    if not merged:
        change = np.empty(len(values), dtype=bool)
        change[0] = True
        np.not_equal(values[1:], values[:-1], out=change[1:])
        run_idx = np.flatnonzero(change)
        if len(run_idx) != len(values):
            values = values[run_idx]
            lengths = np.add.reduceat(lengths, run_idx)
    rvals = values
    rlens = lengths
    is_fill = (rvals == 0) | (rvals == _ALL_ONES_GROUP)
    fill_flags = np.uint32(FILL_FLAG) | (
        (rvals == _ALL_ONES_GROUP) * np.uint32(FILL_BIT_FLAG)
    )
    if int(rlens.max()) <= MAX_FILL_GROUPS:
        # Common case: every fill fits one word.
        base = np.where(is_fill, fill_flags | rlens.astype(np.uint32), rvals)
        lit_multi = rlens > 1
        lit_multi &= ~is_fill
        if not lit_multi.any():
            return base
        return np.repeat(base, np.where(is_fill, 1, rlens))
    # General path: some fill spans multiple words.
    nwords = np.where(
        is_fill, (rlens + MAX_FILL_GROUPS - 1) // MAX_FILL_GROUPS, rlens
    )
    base = np.where(
        is_fill,
        fill_flags | np.minimum(rlens, MAX_FILL_GROUPS).astype(np.uint32),
        rvals,
    ).astype(np.uint32, copy=False)
    out = np.repeat(base, nwords)
    # Over-long fills: every word but the last is a MAX fill; patch the tail.
    out_starts = np.concatenate(([0], np.cumsum(nwords)[:-1]))
    multi = is_fill & (nwords > 1)
    tail_pos = (out_starts + nwords - 1)[multi]
    remainder = (rlens - (nwords - 1) * MAX_FILL_GROUPS)[multi]
    out[tail_pos] = fill_flags[multi] | remainder.astype(np.uint32)
    return out


# -- reference (pure Python) helpers -----------------------------------------


class _Builder:
    """Accumulates WAH words, merging adjacent compatible fills."""

    __slots__ = ("words",)

    def __init__(self) -> None:
        self.words: list[int] = []

    def append_literal(self, group: int) -> None:
        if group == 0:
            self.append_fill(1, 0)
        elif group == _ALL_ONES_GROUP:
            self.append_fill(1, 1)
        else:
            self.words.append(group)

    def append_fill(self, ngroups: int, bit: int) -> None:
        if ngroups <= 0:
            return
        flag = FILL_FLAG | (FILL_BIT_FLAG if bit else 0)
        if self.words:
            last = self.words[-1]
            if (last & ~MAX_FILL_GROUPS) == flag:
                combined = (last & MAX_FILL_GROUPS) + ngroups
                if combined <= MAX_FILL_GROUPS:
                    self.words[-1] = flag | combined
                    return
                self.words[-1] = flag | MAX_FILL_GROUPS
                ngroups = combined - MAX_FILL_GROUPS
        while ngroups > MAX_FILL_GROUPS:
            self.words.append(flag | MAX_FILL_GROUPS)
            ngroups -= MAX_FILL_GROUPS
        self.words.append(flag | ngroups)


class _RunReader:
    """Sequential decoder exposing the current run of a WAH word stream."""

    __slots__ = ("_words", "_pos", "_len", "ngroups", "literal", "is_fill")

    def __init__(self, words: list[int]):
        self._words = words
        self._pos = 0
        self._len = len(words)
        self.ngroups = 0
        self.literal = 0
        self.is_fill = False

    def load(self) -> bool:
        """Advance to the next word; return False at end of stream."""
        if self._pos >= self._len:
            return False
        word = self._words[self._pos]
        self._pos += 1
        if word & FILL_FLAG:
            self.is_fill = True
            self.ngroups = word & MAX_FILL_GROUPS
            self.literal = _ALL_ONES_GROUP if word & FILL_BIT_FLAG else 0
            if self.ngroups == 0:
                raise CorruptIndexError("WAH fill word with zero length")
        else:
            self.is_fill = False
            self.ngroups = 1
            self.literal = word
        return True

    def consume(self, ngroups: int) -> None:
        self.ngroups -= ngroups


_PY_OPS: dict[str, Callable[[int, int], int]] = {
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "andnot": lambda a, b: a & (b ^ _ALL_ONES_GROUP),
}

_NP_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "xor": np.bitwise_xor,
    "andnot": lambda a, b: np.bitwise_and(
        a, np.bitwise_xor(b, np.uint32(_ALL_ONES_GROUP))
    ),
}


# -- backend interface --------------------------------------------------------


class KernelBackend:
    """One implementation of the word-level codec kernels.

    All WAH kernels exchange ``uint32`` word / group arrays; BBC kernels
    exchange ``uint8`` byte arrays.  Implementations must emit canonical
    encodings so results are word-identical across backends.
    """

    #: Registry name (``python`` | ``numpy`` | ``numba`` | ...).
    name: str = "abstract"

    # WAH ------------------------------------------------------------------

    def wah_encode(self, groups: np.ndarray) -> np.ndarray:
        """Canonical WAH words for an array of 31-bit group values."""
        raise NotImplementedError

    def wah_decode(self, words: np.ndarray, ngroups: int) -> np.ndarray:
        """Per-group value array (uint32) for a WAH word stream."""
        raise NotImplementedError

    def wah_binary(
        self, opcode: str, a: np.ndarray, b: np.ndarray, ngroups: int
    ) -> np.ndarray:
        """Compressed-domain binary op; ``opcode`` is one of WAH_OPCODES."""
        raise NotImplementedError

    def wah_or_many(
        self, operands: list[np.ndarray], ngroups: int
    ) -> np.ndarray:
        """OR of several word streams (wide unions)."""
        raise NotImplementedError

    def wah_count(self, words: np.ndarray) -> int:
        """Population count computed on the compressed words."""
        raise NotImplementedError

    # BBC ------------------------------------------------------------------

    def bbc_encode(self, raw: np.ndarray) -> tuple[np.ndarray, int, int]:
        """Encode verbatim bytes; returns (data, fill_tokens, literal_tokens)."""
        raise NotImplementedError

    def bbc_decode(
        self, data: np.ndarray, expected_bytes: int
    ) -> tuple[np.ndarray, int]:
        """Decode a BBC byte stream; returns (raw bytes, tokens read)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


# -- python backend -----------------------------------------------------------


class PythonKernels(KernelBackend):
    """The reference implementation: one Python step per stored word."""

    name = "python"

    def wah_encode(self, groups: np.ndarray) -> np.ndarray:
        builder = _Builder()
        for group in groups.tolist():
            builder.append_literal(group)
        return np.asarray(builder.words, dtype=np.uint32)

    def wah_decode(self, words: np.ndarray, ngroups: int) -> np.ndarray:
        out: list[int] = []
        for word in words.tolist():
            if word & FILL_FLAG:
                value = _ALL_ONES_GROUP if word & FILL_BIT_FLAG else 0
                out.extend([value] * (word & MAX_FILL_GROUPS))
            else:
                out.append(word)
        return np.asarray(out, dtype=np.uint32)

    def wah_binary(
        self, opcode: str, a: np.ndarray, b: np.ndarray, ngroups: int
    ) -> np.ndarray:
        op = _PY_OPS[opcode]
        left = _RunReader(a.tolist())
        right = _RunReader(b.tolist())
        builder = _Builder()
        remaining = ngroups
        left_ok = left.load()
        right_ok = right.load()
        while remaining > 0:
            if left.ngroups == 0:
                left_ok = left.load()
            if right.ngroups == 0:
                right_ok = right.load()
            if not (left_ok and right_ok):
                raise CorruptIndexError("WAH stream ended before all groups read")
            if left.is_fill and right.is_fill:
                take = min(left.ngroups, right.ngroups)
                merged = op(left.literal, right.literal)
                if merged == 0:
                    builder.append_fill(take, 0)
                elif merged == _ALL_ONES_GROUP:
                    builder.append_fill(take, 1)
                else:  # pragma: no cover - AND/OR/XOR of fills is a fill
                    for _ in range(take):
                        builder.append_literal(merged)
            else:
                take = 1
                builder.append_literal(op(left.literal, right.literal))
            left.consume(take)
            right.consume(take)
            remaining -= take
        return np.asarray(builder.words, dtype=np.uint32)

    def wah_or_many(
        self, operands: list[np.ndarray], ngroups: int
    ) -> np.ndarray:
        result = operands[0]
        for other in operands[1:]:
            result = self.wah_binary("or", result, other, ngroups)
        return result

    def wah_count(self, words: np.ndarray) -> int:
        total = 0
        for word in words.tolist():
            if word & FILL_FLAG:
                if word & FILL_BIT_FLAG:
                    total += GROUP_BITS * (word & MAX_FILL_GROUPS)
            else:
                total += word.bit_count()
        return total

    def bbc_encode(self, raw: np.ndarray) -> tuple[np.ndarray, int, int]:
        data = raw.tobytes()
        out = bytearray()
        n = len(data)
        i = 0
        fill_tokens = 0
        literal_tokens = 0
        while i < n:
            byte = data[i]
            if byte in (0x00, 0xFF):
                j = i
                while j < n and data[j] == byte:
                    j += 1
                run = j - i
                flag = BBC_FILL_FLAG | (BBC_FILL_BIT if byte == 0xFF else 0)
                while run > 0:
                    take = min(run, BBC_MAX_FILL_RUN)
                    out.append(flag | take)
                    fill_tokens += 1
                    run -= take
                i = j
            else:
                j = i
                while j < n and data[j] not in (0x00, 0xFF):
                    j += 1
                run = j - i
                start = i
                while run > 0:
                    take = min(run, BBC_MAX_LITERAL_RUN)
                    out.append(take)
                    out.extend(data[start : start + take])
                    literal_tokens += 1
                    start += take
                    run -= take
                i = j
        return (
            np.frombuffer(bytes(out), dtype=np.uint8),
            fill_tokens,
            literal_tokens,
        )

    def bbc_decode(
        self, data: np.ndarray, expected_bytes: int
    ) -> tuple[np.ndarray, int]:
        stream = data.tobytes()
        raw = bytearray()
        i = 0
        tokens = 0
        while i < len(stream):
            control = stream[i]
            i += 1
            tokens += 1
            if control & BBC_FILL_FLAG:
                run = control & BBC_MAX_FILL_RUN
                if run == 0:
                    raise CorruptIndexError("BBC fill token with zero length")
                raw.extend(
                    (b"\xff" if control & BBC_FILL_BIT else b"\x00") * run
                )
            else:
                if control == 0 or i + control > len(stream):
                    raise CorruptIndexError("BBC literal token truncated")
                raw.extend(stream[i : i + control])
                i += control
        if len(raw) != expected_bytes:
            raise CorruptIndexError(
                f"BBC stream decoded to {len(raw)} bytes, "
                f"expected {expected_bytes}"
            )
        return np.frombuffer(bytes(raw), dtype=np.uint8), tokens


# -- numpy backend ------------------------------------------------------------


class NumpyKernels(KernelBackend):
    """Vectorized kernels: run-merge logical ops, scatter-write encoders."""

    name = "numpy"

    def wah_encode(self, groups: np.ndarray) -> np.ndarray:
        ngroups = len(groups)
        if ngroups == 0:
            return _EMPTY_U32
        groups = groups.astype(np.uint32, copy=False)
        change = np.empty(ngroups, dtype=bool)
        change[0] = True
        np.not_equal(groups[1:], groups[:-1], out=change[1:])
        run_starts = np.flatnonzero(change)
        run_lengths = np.empty(len(run_starts), dtype=np.int64)
        np.subtract(run_starts[1:], run_starts[:-1], out=run_lengths[:-1])
        run_lengths[-1] = ngroups - run_starts[-1]
        return _encode_runs(groups[run_starts], run_lengths, merged=True)

    def wah_decode(self, words: np.ndarray, ngroups: int) -> np.ndarray:
        if len(words) == 0:
            return _EMPTY_U32
        if len(words) == ngroups and not bool(
            (words >= np.uint32(FILL_FLAG)).any()
        ):
            return words  # all literals: the stream IS the group array
        values, lengths = _wah_run_view(words)
        return np.repeat(values, lengths)

    def wah_binary(
        self, opcode: str, a: np.ndarray, b: np.ndarray, ngroups: int
    ) -> np.ndarray:
        if ngroups == 0:
            return _EMPTY_U32
        ufunc = _NP_OPS[opcode]
        # Mostly-literal operands: decoding to one group array and applying
        # the ufunc beats the run merge (whose sorts pay off only when runs
        # are long).  Both paths re-encode canonically, so the resulting
        # words are identical either way.
        if len(a) + len(b) > ngroups // 4:
            merged = ufunc(self.wah_decode(a, ngroups), self.wah_decode(b, ngroups))
            return self.wah_encode(merged)
        va, la = _wah_run_view(a)
        vb, lb = _wah_run_view(b)
        ends_a = np.cumsum(la)
        ends_b = np.cumsum(lb)
        # Merged segment boundaries: every point where either stream's run
        # ends.  Each segment maps to exactly one run of each operand, found
        # with searchsorted on the cumulative ends.
        ends = np.union1d(ends_a, ends_b)
        starts = np.concatenate(([0], ends[:-1]))
        ai = np.searchsorted(ends_a, starts, side="right")
        bi = np.searchsorted(ends_b, starts, side="right")
        if (ai >= len(va)).any() or (bi >= len(vb)).any():
            raise CorruptIndexError("WAH stream ended before all groups read")
        values = ufunc(va[ai], vb[bi])
        return _encode_runs(values, ends - starts)

    def wah_or_many(
        self, operands: list[np.ndarray], ngroups: int
    ) -> np.ndarray:
        # Wide unions densify: decode each operand once into a group-array
        # accumulator (FastBit does the same) and re-encode at the end.
        acc = self.wah_decode(operands[0], ngroups).copy()
        for other in operands[1:]:
            np.bitwise_or(acc, self.wah_decode(other, ngroups), out=acc)
        return self.wah_encode(acc)

    def wah_count(self, words: np.ndarray) -> int:
        if len(words) == 0:
            return 0
        is_fill = (words & np.uint32(FILL_FLAG)) != 0
        one_fill = is_fill & ((words & np.uint32(FILL_BIT_FLAG)) != 0)
        fill_bits = GROUP_BITS * int(
            (words[one_fill] & np.uint32(MAX_FILL_GROUPS)).sum(dtype=np.int64)
        )
        literal_bits = int(np.bitwise_count(words[~is_fill]).sum(dtype=np.int64))
        return fill_bits + literal_bits

    def bbc_encode(self, raw: np.ndarray) -> tuple[np.ndarray, int, int]:
        n = len(raw)
        if n == 0:
            return _EMPTY_U8, 0, 0
        # Classify bytes: 1 = 0x00 fill, 2 = 0xFF fill, 0 = literal.  Runs
        # of one class become token runs (same-class fill bytes are always
        # the same byte; literal bytes chunk together regardless of value).
        klass = np.where(raw == 0, 1, np.where(raw == 0xFF, 2, 0)).astype(np.int8)
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(klass[1:], klass[:-1], out=change[1:])
        run_starts = np.flatnonzero(change)
        run_lens = np.diff(np.append(run_starts, n)).astype(np.int64)
        run_class = klass[run_starts]
        is_fill = run_class != 0
        cap = np.where(is_fill, BBC_MAX_FILL_RUN, BBC_MAX_LITERAL_RUN)
        ntok = (run_lens + cap - 1) // cap
        run_bytes = np.where(is_fill, ntok, ntok + run_lens)
        out_starts = np.concatenate(([0], np.cumsum(run_bytes)[:-1]))
        out = np.zeros(int(run_bytes.sum()), dtype=np.uint8)
        # Expand runs to tokens; the last token of a run takes the remainder.
        tok_run = np.repeat(np.arange(len(run_starts)), ntok)
        tok_firsts = np.concatenate(([0], np.cumsum(ntok)[:-1]))
        tok_intra = np.arange(len(tok_run)) - np.repeat(tok_firsts, ntok)
        tok_last = tok_intra == (ntok[tok_run] - 1)
        tok_cap = cap[tok_run]
        take = np.where(
            tok_last, run_lens[tok_run] - tok_intra * tok_cap, tok_cap
        )
        tok_fill = is_fill[tok_run]
        # Fill tokens are 1 byte each; literal tokens are 1 + 127 bytes
        # except the last, so token t of a run starts at t * (cap + 1).
        pos = out_starts[tok_run] + np.where(
            tok_fill, tok_intra, tok_intra * (BBC_MAX_LITERAL_RUN + 1)
        )
        control = np.where(
            tok_fill,
            BBC_FILL_FLAG
            | np.where(run_class[tok_run] == 2, BBC_FILL_BIT, 0)
            | take,
            take,
        )
        out[pos] = control.astype(np.uint8)
        lit = ~tok_fill
        if lit.any():
            ptake = take[lit]
            src = run_starts[tok_run[lit]] + tok_intra[lit] * BBC_MAX_LITERAL_RUN
            total = int(ptake.sum())
            firsts = np.concatenate(([0], np.cumsum(ptake)[:-1]))
            rel = np.arange(total) - np.repeat(firsts, ptake)
            out[np.repeat(pos[lit] + 1, ptake) + rel] = raw[
                np.repeat(src, ptake) + rel
            ]
        return out, int(tok_fill.sum()), int(lit.sum())

    def bbc_decode(
        self, data: np.ndarray, expected_bytes: int
    ) -> tuple[np.ndarray, int]:
        # Token boundaries are data-dependent (a literal control byte says
        # how many payload bytes follow), so the walk is per token — but
        # tokens cover up to 127 bytes each, and all byte expansion below
        # is vectorized.
        stream = data.tobytes()
        values: list[int] = []  # fill byte value; 0 placeholder for literals
        lengths: list[int] = []
        sources: list[int] = []  # payload offset for literals, -1 for fills
        i = 0
        while i < len(stream):
            control = stream[i]
            i += 1
            if control & BBC_FILL_FLAG:
                run = control & BBC_MAX_FILL_RUN
                if run == 0:
                    raise CorruptIndexError("BBC fill token with zero length")
                values.append(0xFF if control & BBC_FILL_BIT else 0x00)
                lengths.append(run)
                sources.append(-1)
            else:
                if control == 0 or i + control > len(stream):
                    raise CorruptIndexError("BBC literal token truncated")
                values.append(0)
                lengths.append(control)
                sources.append(i)
                i += control
        tokens = len(lengths)
        lens = np.asarray(lengths, dtype=np.int64)
        total = int(lens.sum())
        if total != expected_bytes:
            raise CorruptIndexError(
                f"BBC stream decoded to {total} bytes, "
                f"expected {expected_bytes}"
            )
        out = np.repeat(np.asarray(values, dtype=np.uint8), lens)
        src = np.asarray(sources, dtype=np.int64)
        lit = src >= 0
        if lit.any():
            ptake = lens[lit]
            offsets = np.concatenate(([0], np.cumsum(lens)[:-1]))[lit]
            n = int(ptake.sum())
            firsts = np.concatenate(([0], np.cumsum(ptake)[:-1]))
            rel = np.arange(n) - np.repeat(firsts, ptake)
            out[np.repeat(offsets, ptake) + rel] = data[
                np.repeat(src[lit], ptake) + rel
            ]
        return out, tokens


# -- numba backend (registered only when numba imports) ----------------------


def _build_numba_backend() -> KernelBackend | None:
    try:
        import numba
    except ImportError:
        return None

    u32 = np.uint32

    @numba.njit(cache=True)
    def _nb_binary(a, b, ngroups, opcode):  # pragma: no cover - needs numba
        out = np.empty(len(a) + len(b) + 2, dtype=u32)
        n = 0
        ai = 0
        bi = 0
        a_len = 0
        a_val = u32(0)
        a_fill = False
        b_len = 0
        b_val = u32(0)
        b_fill = False
        remaining = ngroups
        while remaining > 0:
            if a_len == 0:
                if ai >= len(a):
                    raise ValueError("WAH stream ended before all groups read")
                word = a[ai]
                ai += 1
                if word & u32(FILL_FLAG):
                    a_fill = True
                    a_len = int(word & u32(MAX_FILL_GROUPS))
                    if a_len == 0:
                        raise ValueError("WAH fill word with zero length")
                    a_val = (
                        u32(_ALL_ONES_GROUP)
                        if word & u32(FILL_BIT_FLAG)
                        else u32(0)
                    )
                else:
                    a_fill = False
                    a_len = 1
                    a_val = word
            if b_len == 0:
                if bi >= len(b):
                    raise ValueError("WAH stream ended before all groups read")
                word = b[bi]
                bi += 1
                if word & u32(FILL_FLAG):
                    b_fill = True
                    b_len = int(word & u32(MAX_FILL_GROUPS))
                    if b_len == 0:
                        raise ValueError("WAH fill word with zero length")
                    b_val = (
                        u32(_ALL_ONES_GROUP)
                        if word & u32(FILL_BIT_FLAG)
                        else u32(0)
                    )
                else:
                    b_fill = False
                    b_len = 1
                    b_val = word
            if opcode == 0:
                merged = a_val & b_val
            elif opcode == 1:
                merged = a_val | b_val
            elif opcode == 2:
                merged = a_val ^ b_val
            else:
                merged = a_val & (b_val ^ u32(_ALL_ONES_GROUP))
            if a_fill and b_fill:
                take = a_len if a_len < b_len else b_len
            else:
                take = 1
            if merged == u32(0) or merged == u32(_ALL_ONES_GROUP):
                flag = u32(FILL_FLAG)
                if merged == u32(_ALL_ONES_GROUP):
                    flag |= u32(FILL_BIT_FLAG)
                pending = take
                if n > 0 and (out[n - 1] & ~u32(MAX_FILL_GROUPS)) == flag:
                    combined = int(out[n - 1] & u32(MAX_FILL_GROUPS)) + pending
                    if combined <= MAX_FILL_GROUPS:
                        out[n - 1] = flag | u32(combined)
                        pending = 0
                    else:
                        out[n - 1] = flag | u32(MAX_FILL_GROUPS)
                        pending = combined - MAX_FILL_GROUPS
                while pending > MAX_FILL_GROUPS:
                    out[n] = flag | u32(MAX_FILL_GROUPS)
                    n += 1
                    pending -= MAX_FILL_GROUPS
                if pending > 0:
                    out[n] = flag | u32(pending)
                    n += 1
            else:
                out[n] = merged
                n += 1
            a_len -= take
            b_len -= take
            remaining -= take
        return out[:n].copy()

    @numba.njit(cache=True)
    def _nb_count(words):  # pragma: no cover - needs numba
        total = 0
        for word in words:
            if word & u32(FILL_FLAG):
                if word & u32(FILL_BIT_FLAG):
                    total += GROUP_BITS * int(word & u32(MAX_FILL_GROUPS))
            else:
                w = int(word)
                bits = 0
                while w:
                    w &= w - 1
                    bits += 1
                total += bits
        return total

    _NB_OPCODES = {"and": 0, "or": 1, "xor": 2, "andnot": 3}

    class NumbaKernels(NumpyKernels):
        """Reference run-pair loop compiled with numba's ``@njit``.

        Encode/decode and the BBC kernels inherit the vectorized numpy
        implementations — the run-pair logical op and popcount are the
        paths where a compiled loop beats array arithmetic.
        """

        name = "numba"

        def wah_binary(self, opcode, a, b, ngroups):
            if ngroups == 0:
                return _EMPTY_U32
            try:
                return _nb_binary(a, b, ngroups, _NB_OPCODES[opcode])
            except ValueError as exc:
                raise CorruptIndexError(str(exc)) from exc

        def wah_count(self, words):
            return int(_nb_count(words))

    return NumbaKernels()


# -- registry -----------------------------------------------------------------

_REGISTRY: dict[str, KernelBackend] = {}
_ACTIVE: KernelBackend | None = None

#: Environment variable forcing a backend at import time.
BACKEND_ENV_VAR = "REPRO_BITVECTOR_BACKEND"


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Add a backend to the registry (replacing any same-named one)."""
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of every registered backend."""
    return tuple(_REGISTRY)


def get_backend() -> KernelBackend:
    """The active backend all codec operations dispatch to."""
    return _ACTIVE  # type: ignore[return-value]


def set_backend(name: str) -> str:
    """Switch the active backend; returns the previous backend's name."""
    global _ACTIVE
    try:
        backend = _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown bitvector kernel backend {name!r}; "
            f"available: {sorted(_REGISTRY)}"
        )
    previous = _ACTIVE.name if _ACTIVE is not None else backend.name
    _ACTIVE = backend
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Temporarily switch backends (tests, benchmarks)."""
    previous = set_backend(name)
    try:
        yield get_backend()
    finally:
        set_backend(previous)


def _default_backend_name() -> str:
    forced = os.environ.get(BACKEND_ENV_VAR, "").strip()
    if forced:
        if forced not in _REGISTRY:
            raise ReproError(
                f"{BACKEND_ENV_VAR}={forced!r} names an unknown backend; "
                f"available: {sorted(_REGISTRY)}"
            )
        return forced
    if "numba" in _REGISTRY:
        return "numba"
    return "numpy"


register_backend(PythonKernels())
register_backend(NumpyKernels())
_numba_backend = _build_numba_backend()
if _numba_backend is not None:  # pragma: no cover - exercised only with numba
    register_backend(_numba_backend)
set_backend(_default_backend_name())
