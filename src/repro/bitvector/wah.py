"""Word-Aligned Hybrid (WAH) compressed bitvectors (Wu, Otoo, Shoshani).

WAH splits a bitmap into 31-bit groups and encodes them in 32-bit words of
two kinds, distinguished by the most significant bit (as in the paper's
implementation, "it is the most significant bit that indicates the type of
word we are dealing with"):

* **literal word** (MSB = 0): the lower 31 bits hold one group verbatim;
* **fill word** (MSB = 1): the second most significant bit is the fill bit
  and the remaining 30 bits store the fill length, counted in 31-bit groups.

The word-alignment requirement on fills is what lets logical operations work
directly on compressed operands: AND/OR/XOR below consume runs of groups from
both inputs without ever materializing the verbatim bitmap, producing another
compressed bitvector — exactly the property the paper relies on for fast
bitmap query execution.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.bitvector.bitvector import BitVector
from repro.errors import CorruptIndexError, ReproError
from repro.observability import enabled as _obs_enabled
from repro.observability import record as _obs_record

#: Bits per WAH word.
WORD_BITS = 32
#: Literal payload bits per word (the paper's ``w - 1``).
GROUP_BITS = WORD_BITS - 1
#: Mask selecting a literal payload.
LITERAL_MASK = (1 << GROUP_BITS) - 1
#: MSB flag marking a fill word.
FILL_FLAG = 1 << (WORD_BITS - 1)
#: Second-MSB flag holding a fill word's bit value.
FILL_BIT_FLAG = 1 << (WORD_BITS - 2)
#: Maximum number of groups one fill word can represent (``2**(w-2) - 1``).
MAX_FILL_GROUPS = FILL_BIT_FLAG - 1

_ALL_ONES_GROUP = LITERAL_MASK


def _fill_words_in(words: list[int]) -> int:
    """Number of fill words in a WAH word stream."""
    return sum(1 for word in words if word & FILL_FLAG)


def _record_op_metrics(
    operands: list["WahBitVector"], result: "WahBitVector", ops: int = 1
) -> None:
    """Account one compressed-domain logical operation's decode/emit work.

    Counts are derived from the operand word streams themselves, so they
    are identical whichever execution path (run-pair loop or group-array
    fast path) produced the result.  Callers gate on ``enabled()`` — the
    fill/literal breakdown is a full pass over the operand words, which the
    null-registry fast path must not pay.
    """
    decoded = sum(len(op._words) for op in operands)
    fills = sum(_fill_words_in(op._words) for op in operands)
    _obs_record("wah.ops", ops)
    _obs_record("wah.words_decoded", decoded)
    _obs_record("wah.fill_words", fills)
    _obs_record("wah.literal_words", decoded - fills)
    _obs_record("wah.words_emitted", len(result._words))


class _Builder:
    """Accumulates WAH words, merging adjacent compatible fills."""

    __slots__ = ("words",)

    def __init__(self) -> None:
        self.words: list[int] = []

    def append_literal(self, group: int) -> None:
        if group == 0:
            self.append_fill(1, 0)
        elif group == _ALL_ONES_GROUP:
            self.append_fill(1, 1)
        else:
            self.words.append(group)

    def append_fill(self, ngroups: int, bit: int) -> None:
        if ngroups <= 0:
            return
        flag = FILL_FLAG | (FILL_BIT_FLAG if bit else 0)
        if self.words:
            last = self.words[-1]
            if (last & ~MAX_FILL_GROUPS) == flag:
                combined = (last & MAX_FILL_GROUPS) + ngroups
                if combined <= MAX_FILL_GROUPS:
                    self.words[-1] = flag | combined
                    return
                self.words[-1] = flag | MAX_FILL_GROUPS
                ngroups = combined - MAX_FILL_GROUPS
        while ngroups > MAX_FILL_GROUPS:
            self.words.append(flag | MAX_FILL_GROUPS)
            ngroups -= MAX_FILL_GROUPS
        self.words.append(flag | ngroups)


class _RunReader:
    """Sequential decoder exposing the current run of a WAH word stream."""

    __slots__ = ("_words", "_pos", "_len", "ngroups", "literal", "is_fill")

    def __init__(self, words: list[int]):
        self._words = words
        self._pos = 0
        self._len = len(words)
        self.ngroups = 0
        self.literal = 0
        self.is_fill = False

    def load(self) -> bool:
        """Advance to the next word; return False at end of stream."""
        if self._pos >= self._len:
            return False
        word = self._words[self._pos]
        self._pos += 1
        if word & FILL_FLAG:
            self.is_fill = True
            self.ngroups = word & MAX_FILL_GROUPS
            self.literal = _ALL_ONES_GROUP if word & FILL_BIT_FLAG else 0
            if self.ngroups == 0:
                raise CorruptIndexError("WAH fill word with zero length")
        else:
            self.is_fill = False
            self.ngroups = 1
            self.literal = word
        return True

    def consume(self, ngroups: int) -> None:
        self.ngroups -= ngroups


def _groups_of(vec: BitVector) -> np.ndarray:
    """The 31-bit groups of a verbatim bitvector as a uint64 array."""
    bools = vec.to_bools()
    ngroups = (len(bools) + GROUP_BITS - 1) // GROUP_BITS
    padded = np.zeros(ngroups * GROUP_BITS, dtype=bool)
    padded[: len(bools)] = bools
    weights = (np.uint64(1) << np.arange(GROUP_BITS, dtype=np.uint64))
    return padded.reshape(ngroups, GROUP_BITS) @ weights


class WahBitVector:
    """A WAH-compressed bitvector supporting compressed-domain logic ops.

    Instances are immutable.  Build one with :meth:`compress`,
    :meth:`from_bools`, :meth:`zeros`, or :meth:`ones`.
    """

    __slots__ = ("_words", "_nbits", "_np_cache")

    def __init__(self, nbits: int, words: list[int]):
        if nbits < 0:
            raise ReproError(f"nbits must be >= 0, got {nbits}")
        self._nbits = nbits
        self._words = words
        self._np_cache: np.ndarray | None = None
        if sum(_word_groups(w) for w in words) != self.ngroups:
            raise CorruptIndexError(
                f"WAH words cover {sum(_word_groups(w) for w in words)} groups, "
                f"expected {self.ngroups} for {nbits} bits"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def compress(cls, vec: BitVector) -> "WahBitVector":
        """Compress a verbatim bitvector."""
        return cls._from_group_array(vec.nbits, _groups_of(vec))

    @classmethod
    def _from_group_array(cls, nbits: int, groups: np.ndarray) -> "WahBitVector":
        """Encode an array of 31-bit group values (canonical form).

        Fully vectorized: run boundaries come from one ``diff`` pass, fill
        words are scattered in one assignment, and literal runs are copied
        verbatim with one fancy-index write.  Adjacent runs always differ in
        value, so fills never need post-hoc merging.
        """
        ngroups = len(groups)
        if ngroups == 0:
            return cls(nbits, [])
        groups = groups.astype(np.uint32, copy=False)
        change = np.empty(ngroups, dtype=bool)
        change[0] = True
        np.not_equal(groups[1:], groups[:-1], out=change[1:])
        run_starts = np.flatnonzero(change)
        run_values = groups[run_starts]
        run_lengths = np.diff(np.append(run_starts, ngroups))
        if int(run_lengths.max()) > MAX_FILL_GROUPS:  # pragma: no cover - 33 Gbit
            return cls._from_group_array_slow(nbits, groups)
        is_fill = (run_values == 0) | (run_values == _ALL_ONES_GROUP)
        out_counts = np.where(is_fill, 1, run_lengths)
        out_starts = np.concatenate(([0], np.cumsum(out_counts)[:-1]))
        out = np.empty(int(out_counts.sum()), dtype=np.uint32)
        # Fill words in one scatter.
        fill_bit = np.where(
            run_values[is_fill] == _ALL_ONES_GROUP, FILL_BIT_FLAG, 0
        ).astype(np.uint32)
        out[out_starts[is_fill]] = (
            np.uint32(FILL_FLAG) | fill_bit | run_lengths[is_fill].astype(np.uint32)
        )
        # Literal runs copied verbatim: out index = out_start + (pos - run_start).
        lit = ~is_fill
        if lit.any():
            elem_is_lit = np.repeat(lit, run_lengths)
            offsets = np.repeat(out_starts[lit] - run_starts[lit], run_lengths[lit])
            positions = np.flatnonzero(elem_is_lit)
            out[positions + offsets] = groups[positions]
        return cls(nbits, out.tolist())

    @classmethod
    def _from_group_array_slow(
        cls, nbits: int, groups: np.ndarray
    ) -> "WahBitVector":  # pragma: no cover - only for >2**30-group fills
        builder = _Builder()
        boundaries = np.flatnonzero(np.diff(groups)) + 1
        start = 0
        for end in [*boundaries.tolist(), len(groups)]:
            value = int(groups[start])
            run = end - start
            if value == 0:
                builder.append_fill(run, 0)
            elif value == _ALL_ONES_GROUP:
                builder.append_fill(run, 1)
            else:
                builder.words.extend([value] * run)
            start = end
        return cls(nbits, builder.words)

    def _words_np(self) -> np.ndarray:
        if self._np_cache is None:
            self._np_cache = np.array(self._words, dtype=np.uint32)
        return self._np_cache

    def _group_array(self) -> np.ndarray:
        """Decode the compressed words to a per-group value array."""
        words = self._words_np()
        if len(words) == 0:
            return np.empty(0, dtype=np.uint32)
        is_fill = (words & np.uint32(FILL_FLAG)) != 0
        lengths = np.where(is_fill, words & np.uint32(MAX_FILL_GROUPS), 1)
        values = np.where(
            is_fill,
            np.where(
                (words & np.uint32(FILL_BIT_FLAG)) != 0,
                np.uint32(_ALL_ONES_GROUP),
                np.uint32(0),
            ),
            words & np.uint32(LITERAL_MASK),
        )
        return np.repeat(values, lengths)

    @classmethod
    def from_bools(cls, bools: np.ndarray) -> "WahBitVector":
        """Compress a boolean array."""
        return cls.compress(BitVector.from_bools(bools))

    @classmethod
    def zeros(cls, nbits: int) -> "WahBitVector":
        """An all-zero compressed vector."""
        builder = _Builder()
        builder.append_fill((nbits + GROUP_BITS - 1) // GROUP_BITS, 0)
        return cls(nbits, builder.words)

    @classmethod
    def ones(cls, nbits: int) -> "WahBitVector":
        """An all-one compressed vector (tail bits beyond ``nbits`` clear)."""
        ngroups = (nbits + GROUP_BITS - 1) // GROUP_BITS
        tail = nbits % GROUP_BITS
        builder = _Builder()
        if tail:
            builder.append_fill(ngroups - 1, 1)
            builder.append_literal((1 << tail) - 1)
        else:
            builder.append_fill(ngroups, 1)
        return cls(nbits, builder.words)

    # -- accessors ---------------------------------------------------------

    @property
    def nbits(self) -> int:
        """Number of bits represented."""
        return self._nbits

    @property
    def ngroups(self) -> int:
        """Number of 31-bit groups (including a trailing partial group)."""
        return (self._nbits + GROUP_BITS - 1) // GROUP_BITS

    @property
    def words(self) -> list[int]:
        """The compressed 32-bit words (do not mutate)."""
        return self._words

    def nbytes(self) -> int:
        """Compressed payload size in bytes (4 bytes per WAH word)."""
        return 4 * len(self._words)

    def compression_ratio(self) -> float:
        """Compressed size over verbatim size; < 1 means compression helped."""
        verbatim = (self._nbits + 7) // 8
        if verbatim == 0:
            return 1.0
        return self.nbytes() / verbatim

    def count(self) -> int:
        """Number of 1-bits, computed on the compressed form."""
        total = 0
        for word in self._words:
            if word & FILL_FLAG:
                if word & FILL_BIT_FLAG:
                    total += GROUP_BITS * (word & MAX_FILL_GROUPS)
            else:
                total += word.bit_count()
        return total

    def density(self) -> float:
        """Fraction of 1-bits."""
        if self._nbits == 0:
            return 0.0
        return self.count() / self._nbits

    def decompress(self) -> BitVector:
        """Expand back to a verbatim :class:`BitVector`."""
        groups = self._group_array()
        bits = (
            groups[:, None] >> np.arange(GROUP_BITS, dtype=np.uint64)[None, :]
        ) & np.uint64(1)
        bools = bits.reshape(-1)[: self._nbits].astype(bool)
        return BitVector.from_bools(bools)

    def to_bools(self) -> np.ndarray:
        """Expand to a boolean array."""
        return self.decompress().to_bools()

    def to_indices(self) -> np.ndarray:
        """Sorted positions of the 1-bits."""
        return self.decompress().to_indices()

    def runs(self) -> Iterator[tuple[bool, int, int]]:
        """Yield ``(is_fill, literal_or_fill_value, ngroups)`` per word."""
        for word in self._words:
            if word & FILL_FLAG:
                bit = 1 if word & FILL_BIT_FLAG else 0
                yield True, bit, word & MAX_FILL_GROUPS
            else:
                yield False, word, 1

    # -- logical operations -------------------------------------------------

    def _binary_op(
        self,
        other: "WahBitVector",
        op: Callable[[int, int], int],
        ufunc: np.ufunc,
    ) -> "WahBitVector":
        if not isinstance(other, WahBitVector):
            raise TypeError(f"expected WahBitVector, got {type(other).__name__}")
        if other._nbits != self._nbits:
            raise ReproError(
                f"bitvector length mismatch: {self._nbits} vs {other._nbits}"
            )
        # Fast path for poorly compressed operands: run-pair iteration costs
        # one Python step per word, so when the streams are mostly literals
        # it is cheaper to decode both to group arrays and apply the ufunc.
        # The result is identical (group-array re-encoding is canonical).
        if len(self._words) + len(other._words) > self.ngroups // 4:
            merged = ufunc(self._group_array(), other._group_array())
            result = WahBitVector._from_group_array(self._nbits, merged)
            if _obs_enabled():
                _record_op_metrics([self, other], result)
            return result
        left = _RunReader(self._words)
        right = _RunReader(other._words)
        builder = _Builder()
        remaining = self.ngroups
        left_ok = left.load()
        right_ok = right.load()
        while remaining > 0:
            if left.ngroups == 0:
                left_ok = left.load()
            if right.ngroups == 0:
                right_ok = right.load()
            if not (left_ok and right_ok):
                raise CorruptIndexError("WAH stream ended before all groups read")
            if left.is_fill and right.is_fill:
                take = min(left.ngroups, right.ngroups)
                merged = op(left.literal, right.literal)
                if merged == 0:
                    builder.append_fill(take, 0)
                elif merged == _ALL_ONES_GROUP:
                    builder.append_fill(take, 1)
                else:  # pragma: no cover - AND/OR/XOR of fills is a fill
                    for _ in range(take):
                        builder.append_literal(merged)
            else:
                take = 1
                builder.append_literal(op(left.literal, right.literal))
            left.consume(take)
            right.consume(take)
            remaining -= take
        result = WahBitVector(self._nbits, builder.words)
        if _obs_enabled():
            _record_op_metrics([self, other], result)
        return result

    @classmethod
    def or_many(cls, operands: list["WahBitVector"]) -> "WahBitVector":
        """OR several compressed vectors via a group-array accumulator.

        Wide unions (equality-encoded range queries OR dozens of value
        bitmaps) degrade under pairwise compressed ops because the
        accumulating result densifies and every subsequent op pays for it.
        The standard fix (FastBit does the same) is to decode each operand
        once into an uncompressed accumulator and re-encode at the end: the
        compressed words *read* are just the operands' own words.
        """
        if not operands:
            raise ReproError("or_many requires at least one operand")
        first = operands[0]
        for other in operands[1:]:
            if other._nbits != first._nbits:
                raise ReproError(
                    f"bitvector length mismatch: {first._nbits} vs {other._nbits}"
                )
        if len(operands) == 1:
            return first
        acc = first._group_array().copy()
        for other in operands[1:]:
            np.bitwise_or(acc, other._group_array(), out=acc)
        result = cls._from_group_array(first._nbits, acc)
        if _obs_enabled():
            _record_op_metrics(operands, result, ops=len(operands) - 1)
        return result

    def __and__(self, other: "WahBitVector") -> "WahBitVector":
        return self._binary_op(other, lambda a, b: a & b, np.bitwise_and)

    def __or__(self, other: "WahBitVector") -> "WahBitVector":
        return self._binary_op(other, lambda a, b: a | b, np.bitwise_or)

    def __xor__(self, other: "WahBitVector") -> "WahBitVector":
        return self._binary_op(other, lambda a, b: a ^ b, np.bitwise_xor)

    def __invert__(self) -> "WahBitVector":
        # NOT is XOR with the all-ones vector whose tail bits (beyond nbits)
        # are zero, which keeps the trailing-group invariant intact.
        return self ^ WahBitVector.ones(self._nbits)

    def andnot(self, other: "WahBitVector") -> "WahBitVector":
        """``self & ~other`` on the compressed forms."""
        return self._binary_op(
            other,
            lambda a, b: a & (b ^ _ALL_ONES_GROUP),
            lambda a, b: a & (b ^ np.uint64(_ALL_ONES_GROUP)),
        )

    # -- comparisons ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WahBitVector):
            return NotImplemented
        return self._nbits == other._nbits and self._words == other._words

    def __hash__(self) -> int:
        return hash((self._nbits, tuple(self._words)))

    def __repr__(self) -> str:
        return (
            f"WahBitVector(nbits={self._nbits}, words={len(self._words)}, "
            f"ratio={self.compression_ratio():.3f})"
        )


def _word_groups(word: int) -> int:
    if word & FILL_FLAG:
        return word & MAX_FILL_GROUPS
    return 1
