"""Word-Aligned Hybrid (WAH) compressed bitvectors (Wu, Otoo, Shoshani).

WAH splits a bitmap into 31-bit groups and encodes them in 32-bit words of
two kinds, distinguished by the most significant bit (as in the paper's
implementation, "it is the most significant bit that indicates the type of
word we are dealing with"):

* **literal word** (MSB = 0): the lower 31 bits hold one group verbatim;
* **fill word** (MSB = 1): the second most significant bit is the fill bit
  and the remaining 30 bits store the fill length, counted in 31-bit groups.

The word-alignment requirement on fills is what lets logical operations work
directly on compressed operands: AND/OR/XOR consume runs of groups from both
inputs without ever materializing the verbatim bitmap, producing another
compressed bitvector — exactly the property the paper relies on for fast
bitmap query execution.

Words are stored as a read-only ``numpy`` ``uint32`` array, and every
encode/decode/logical-op/count kernel lives in
:mod:`repro.bitvector.kernels` behind a pluggable backend registry
(``python`` reference, vectorized ``numpy`` default, optional ``numba``).
All backends emit identical canonical words; see ``docs/kernels.md``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.bitvector import kernels as _kernels
from repro.bitvector.bitvector import BitVector
from repro.bitvector.kernels import (  # noqa: F401  (re-exported API)
    FILL_BIT_FLAG,
    FILL_FLAG,
    GROUP_BITS,
    LITERAL_MASK,
    MAX_FILL_GROUPS,
    WORD_BITS,
    _ALL_ONES_GROUP,
    _Builder,
    _RunReader,
)
from repro.errors import CorruptIndexError, ReproError
from repro.observability import enabled as _obs_enabled
from repro.observability import record as _obs_record

_EMPTY_WORDS = np.empty(0, dtype=np.uint32)
_EMPTY_WORDS.setflags(write=False)


def _as_word_array(words: "np.ndarray | list[int]") -> np.ndarray:
    """Normalize caller-supplied words to a read-only uint32 array.

    Accepts the historical ``list[int]`` form as well as any uint32 array.
    Read-only arrays (e.g. zero-copy ``np.frombuffer`` views from storage
    loads) are aliased as-is; writable caller arrays are copied so the new
    instance can never observe later mutation.
    """
    if isinstance(words, np.ndarray):
        arr = words.astype(np.uint32, copy=False)
        if arr is words and arr.flags.writeable:
            arr = arr.copy()
    else:
        arr = np.asarray(words, dtype=np.uint32)
    if arr.flags.writeable:
        arr.setflags(write=False)
    return arr


def _fill_words_in(words: np.ndarray) -> int:
    """Number of fill words in a WAH word stream."""
    return int(((words & np.uint32(FILL_FLAG)) != 0).sum())


def _record_op_metrics(
    operands: list["WahBitVector"], result: "WahBitVector", ops: int = 1
) -> None:
    """Account one compressed-domain logical operation's decode/emit work.

    Counts are derived from the operand word streams themselves, so they
    are identical whichever kernel backend produced the result.  Callers
    gate on ``enabled()`` — the fill/literal breakdown is a full pass over
    the operand words, which the null-registry fast path must not pay.
    """
    decoded = sum(len(op._words) for op in operands)
    fills = sum(_fill_words_in(op._words) for op in operands)
    _obs_record("wah.ops", ops)
    _obs_record("wah.words_decoded", decoded)
    _obs_record("wah.fill_words", fills)
    _obs_record("wah.literal_words", decoded - fills)
    _obs_record("wah.words_emitted", len(result._words))


class WahBitVector:
    """A WAH-compressed bitvector supporting compressed-domain logic ops.

    Instances are immutable.  Build one with :meth:`compress`,
    :meth:`from_bools`, :meth:`zeros`, or :meth:`ones`.
    """

    __slots__ = ("_words", "_nbits", "_hash")

    def __init__(self, nbits: int, words: "np.ndarray | list[int]"):
        if nbits < 0:
            raise ReproError(f"nbits must be >= 0, got {nbits}")
        self._nbits = nbits
        self._words = _as_word_array(words)
        self._hash: int | None = None
        covered = int(_kernels.wah_stream_lengths(self._words).sum())
        if covered != self.ngroups:
            raise CorruptIndexError(
                f"WAH words cover {covered} groups, "
                f"expected {self.ngroups} for {nbits} bits"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def _from_words(cls, nbits: int, words: np.ndarray) -> "WahBitVector":
        """Wrap kernel output without re-validating the stream."""
        vec = object.__new__(cls)
        vec._nbits = nbits
        if words.flags.writeable:
            words.setflags(write=False)
        vec._words = words
        vec._hash = None
        return vec

    @classmethod
    def compress(cls, vec: BitVector) -> "WahBitVector":
        """Compress a verbatim bitvector."""
        return cls._from_group_array(vec.nbits, _groups_of(vec))

    @classmethod
    def _from_group_array(cls, nbits: int, groups: np.ndarray) -> "WahBitVector":
        """Encode an array of 31-bit group values (canonical form)."""
        return cls._from_words(
            nbits, _kernels.get_backend().wah_encode(groups)
        )

    def _group_array(self) -> np.ndarray:
        """Decode the compressed words to a per-group value array."""
        return _kernels.get_backend().wah_decode(self._words, self.ngroups)

    @classmethod
    def from_bools(cls, bools: np.ndarray) -> "WahBitVector":
        """Compress a boolean array."""
        bools = np.asarray(bools, dtype=bool)
        nbits = len(bools)
        ngroups = (nbits + GROUP_BITS - 1) // GROUP_BITS
        padded = np.zeros(ngroups * GROUP_BITS, dtype=bool)
        padded[:nbits] = bools
        groups = _pack_groups(padded, ngroups)
        return cls._from_group_array(nbits, groups)

    @classmethod
    def zeros(cls, nbits: int) -> "WahBitVector":
        """An all-zero compressed vector."""
        ngroups = (nbits + GROUP_BITS - 1) // GROUP_BITS
        return cls._from_words(nbits, _fill_run(ngroups, 0))

    @classmethod
    def ones(cls, nbits: int) -> "WahBitVector":
        """An all-one compressed vector (tail bits beyond ``nbits`` clear)."""
        ngroups = (nbits + GROUP_BITS - 1) // GROUP_BITS
        tail = nbits % GROUP_BITS
        if tail:
            head = _fill_run(ngroups - 1, 1)
            words = np.append(head, np.uint32((1 << tail) - 1))
        else:
            words = _fill_run(ngroups, 1)
        return cls._from_words(nbits, words)

    # -- accessors ---------------------------------------------------------

    @property
    def nbits(self) -> int:
        """Number of bits represented."""
        return self._nbits

    @property
    def ngroups(self) -> int:
        """Number of 31-bit groups (including a trailing partial group)."""
        return (self._nbits + GROUP_BITS - 1) // GROUP_BITS

    @property
    def words(self) -> np.ndarray:
        """The compressed 32-bit words as a read-only uint32 array."""
        return self._words

    def words32(self) -> int:
        """Stored size in 32-bit word units (the paper's cost currency)."""
        return len(self._words)

    def nbytes(self) -> int:
        """Compressed payload size in bytes (4 bytes per WAH word)."""
        return int(self._words.nbytes)

    def compression_ratio(self) -> float:
        """Compressed size over verbatim size; < 1 means compression helped."""
        verbatim = (self._nbits + 7) // 8
        if verbatim == 0:
            return 1.0
        return self.nbytes() / verbatim

    def count(self) -> int:
        """Number of 1-bits, computed on the compressed form."""
        return _kernels.get_backend().wah_count(self._words)

    def density(self) -> float:
        """Fraction of 1-bits."""
        if self._nbits == 0:
            return 0.0
        return self.count() / self._nbits

    def decompress(self) -> BitVector:
        """Expand back to a verbatim :class:`BitVector`."""
        groups = self._group_array()
        bits = (
            groups[:, None].astype(np.uint64)
            >> np.arange(GROUP_BITS, dtype=np.uint64)[None, :]
        ) & np.uint64(1)
        bools = bits.reshape(-1)[: self._nbits].astype(bool)
        return BitVector.from_bools(bools)

    def to_bools(self) -> np.ndarray:
        """Expand to a boolean array."""
        return self.decompress().to_bools()

    def to_indices(self) -> np.ndarray:
        """Sorted positions of the 1-bits."""
        return self.decompress().to_indices()

    def runs(self) -> Iterator[tuple[bool, int, int]]:
        """Yield ``(is_fill, literal_or_fill_value, ngroups)`` per word."""
        for word in self._words.tolist():
            if word & FILL_FLAG:
                bit = 1 if word & FILL_BIT_FLAG else 0
                yield True, bit, word & MAX_FILL_GROUPS
            else:
                yield False, word, 1

    # -- logical operations -------------------------------------------------

    def _binary_op(self, other: "WahBitVector", opcode: str) -> "WahBitVector":
        if not isinstance(other, WahBitVector):
            raise TypeError(f"expected WahBitVector, got {type(other).__name__}")
        if other._nbits != self._nbits:
            raise ReproError(
                f"bitvector length mismatch: {self._nbits} vs {other._nbits}"
            )
        words = _kernels.get_backend().wah_binary(
            opcode, self._words, other._words, self.ngroups
        )
        result = WahBitVector._from_words(self._nbits, words)
        if _obs_enabled():
            _record_op_metrics([self, other], result)
        return result

    @classmethod
    def or_many(cls, operands: list["WahBitVector"]) -> "WahBitVector":
        """OR several compressed vectors in one pass.

        Wide unions (equality-encoded range queries OR dozens of value
        bitmaps) degrade under pairwise compressed ops because the
        accumulating result densifies and every subsequent op pays for it.
        The standard fix (FastBit does the same) is to decode each operand
        once into an uncompressed accumulator and re-encode at the end: the
        compressed words *read* are just the operands' own words.
        """
        if not operands:
            raise ReproError("or_many requires at least one operand")
        first = operands[0]
        for other in operands[1:]:
            if other._nbits != first._nbits:
                raise ReproError(
                    f"bitvector length mismatch: {first._nbits} vs {other._nbits}"
                )
        if len(operands) == 1:
            return first
        words = _kernels.get_backend().wah_or_many(
            [op._words for op in operands], first.ngroups
        )
        result = cls._from_words(first._nbits, words)
        if _obs_enabled():
            _record_op_metrics(operands, result, ops=len(operands) - 1)
        return result

    def __and__(self, other: "WahBitVector") -> "WahBitVector":
        return self._binary_op(other, "and")

    def __or__(self, other: "WahBitVector") -> "WahBitVector":
        return self._binary_op(other, "or")

    def __xor__(self, other: "WahBitVector") -> "WahBitVector":
        return self._binary_op(other, "xor")

    def __invert__(self) -> "WahBitVector":
        # NOT is XOR with the all-ones vector whose tail bits (beyond nbits)
        # are zero, which keeps the trailing-group invariant intact.
        return self ^ WahBitVector.ones(self._nbits)

    def andnot(self, other: "WahBitVector") -> "WahBitVector":
        """``self & ~other`` on the compressed forms."""
        return self._binary_op(other, "andnot")

    # -- comparisons ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WahBitVector):
            return NotImplemented
        return self._nbits == other._nbits and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self) -> int:
        # Cached: SubResultCache hashes the same vector once per probe, and
        # instances are immutable so the digest never changes.
        if self._hash is None:
            self._hash = hash((self._nbits, self._words.tobytes()))
        return self._hash

    def __repr__(self) -> str:
        return (
            f"WahBitVector(nbits={self._nbits}, words={len(self._words)}, "
            f"ratio={self.compression_ratio():.3f})"
        )


def _fill_run(ngroups: int, bit: int) -> np.ndarray:
    """Canonical fill-word stream covering ``ngroups`` groups of ``bit``."""
    if ngroups <= 0:
        return _EMPTY_WORDS
    flag = FILL_FLAG | (FILL_BIT_FLAG if bit else 0)
    nwords = (ngroups + MAX_FILL_GROUPS - 1) // MAX_FILL_GROUPS
    words = np.full(nwords, flag | MAX_FILL_GROUPS, dtype=np.uint32)
    words[-1] = flag | (ngroups - (nwords - 1) * MAX_FILL_GROUPS)
    return words


def _pack_groups(padded: np.ndarray, ngroups: int) -> np.ndarray:
    """Pack a (ngroups * 31)-long bool array into uint32 group values.

    Each 31-bit group is padded to 32 bits (zero MSB) and packed with
    ``np.packbits`` — one C pass instead of a bool-matrix matmul.
    """
    if ngroups == 0:
        return np.empty(0, dtype=np.uint32)
    wide = np.zeros((ngroups, WORD_BITS), dtype=bool)
    wide[:, :GROUP_BITS] = padded.reshape(ngroups, GROUP_BITS)
    packed = np.packbits(wide.reshape(-1), bitorder="little")
    return packed.view("<u4").astype(np.uint32, copy=False)


def _groups_of(vec: BitVector) -> np.ndarray:
    """The 31-bit groups of a verbatim bitvector as a uint32 array."""
    bools = vec.to_bools()
    ngroups = (len(bools) + GROUP_BITS - 1) // GROUP_BITS
    padded = np.zeros(ngroups * GROUP_BITS, dtype=bool)
    padded[: len(bools)] = bools
    return _pack_groups(padded, ngroups)


def _word_groups(word: int) -> int:
    if word & FILL_FLAG:
        return word & MAX_FILL_GROUPS
    return 1
