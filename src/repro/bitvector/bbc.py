"""Byte-aligned Bitmap Code (BBC, Antoshenkov) — simplified codec.

The paper cites BBC as the main alternative to WAH: better compression
(byte-granular fills instead of WAH's 31-bit groups) but slower logical
operations.  We implement a faithful simplification with two token kinds,
distinguished by the control byte's MSB:

* **fill token** (MSB = 1): bit 6 is the fill bit; bits 0–5 give the run
  length in bytes (1..63); longer runs chain tokens.
* **literal token** (MSB = 0): bits 0–6 give the count ``m`` (1..127) of
  verbatim bytes that follow the control byte.

Logical operations on BBC decode to a verbatim :class:`BitVector`, operate,
and re-encode.  That is deliberately literal-at-query: the paper chose WAH
over BBC precisely because BBC's finer alignment makes compressed-domain
operations 2–20x slower, and this codec exists to reproduce the *size* side
of that trade-off (see the compression ablation benchmark).
"""

from __future__ import annotations

import numpy as np

from repro.bitvector.bitvector import BitVector
from repro.errors import CorruptIndexError, ReproError
from repro.observability import enabled as _obs_enabled
from repro.observability import record as _obs_record

_FILL_FLAG = 0x80
_FILL_BIT = 0x40
_MAX_FILL_RUN = 0x3F  # 63 bytes per fill token
_MAX_LITERAL_RUN = 0x7F  # 127 bytes per literal token


class BbcBitVector:
    """A BBC-compressed bitvector."""

    __slots__ = ("_data", "_nbits")

    def __init__(self, nbits: int, data: bytes):
        if nbits < 0:
            raise ReproError(f"nbits must be >= 0, got {nbits}")
        self._nbits = nbits
        self._data = data

    # -- constructors ------------------------------------------------------

    @classmethod
    def compress(cls, vec: BitVector) -> "BbcBitVector":
        """Compress a verbatim bitvector."""
        raw = np.packbits(vec.to_bools(), bitorder="little")
        out = bytearray()
        n = len(raw)
        i = 0
        fill_tokens = 0
        literal_tokens = 0
        while i < n:
            byte = raw[i]
            if byte in (0x00, 0xFF):
                j = i
                while j < n and raw[j] == byte:
                    j += 1
                run = j - i
                flag = _FILL_FLAG | (_FILL_BIT if byte == 0xFF else 0)
                while run > 0:
                    take = min(run, _MAX_FILL_RUN)
                    out.append(flag | take)
                    fill_tokens += 1
                    run -= take
                i = j
            else:
                j = i
                while j < n and raw[j] not in (0x00, 0xFF):
                    j += 1
                run = j - i
                start = i
                while run > 0:
                    take = min(run, _MAX_LITERAL_RUN)
                    out.append(take)
                    out.extend(raw[start : start + take].tobytes())
                    literal_tokens += 1
                    start += take
                    run -= take
                i = j
        if _obs_enabled():
            _obs_record("bbc.bytes_encoded", n)
            _obs_record("bbc.fill_tokens", fill_tokens)
            _obs_record("bbc.literal_tokens", literal_tokens)
        return cls(vec.nbits, bytes(out))

    @classmethod
    def from_bools(cls, bools: np.ndarray) -> "BbcBitVector":
        """Compress a boolean array."""
        return cls.compress(BitVector.from_bools(bools))

    # -- accessors ---------------------------------------------------------

    @property
    def nbits(self) -> int:
        """Number of bits represented."""
        return self._nbits

    def nbytes(self) -> int:
        """Compressed payload size in bytes."""
        return len(self._data)

    def compression_ratio(self) -> float:
        """Compressed size over verbatim size; < 1 means compression helped."""
        verbatim = (self._nbits + 7) // 8
        if verbatim == 0:
            return 1.0
        return self.nbytes() / verbatim

    def decompress(self) -> BitVector:
        """Expand back to a verbatim :class:`BitVector`."""
        expected_bytes = (self._nbits + 7) // 8
        raw = bytearray()
        data = self._data
        i = 0
        tokens = 0
        while i < len(data):
            control = data[i]
            i += 1
            tokens += 1
            if control & _FILL_FLAG:
                run = control & _MAX_FILL_RUN
                if run == 0:
                    raise CorruptIndexError("BBC fill token with zero length")
                raw.extend((b"\xff" if control & _FILL_BIT else b"\x00") * run)
            else:
                if control == 0 or i + control > len(data):
                    raise CorruptIndexError("BBC literal token truncated")
                raw.extend(data[i : i + control])
                i += control
        if len(raw) != expected_bytes:
            raise CorruptIndexError(
                f"BBC stream decoded to {len(raw)} bytes, expected {expected_bytes}"
            )
        if _obs_enabled():
            _obs_record("bbc.tokens_decoded", tokens)
            _obs_record("bbc.bytes_decoded", len(raw))
        bits = np.unpackbits(np.frombuffer(bytes(raw), dtype=np.uint8),
                             bitorder="little")
        return BitVector.from_bools(bits[: self._nbits].astype(bool))

    def count(self) -> int:
        """Number of 1-bits."""
        return self.decompress().count()

    def to_indices(self) -> np.ndarray:
        """Sorted positions of the 1-bits."""
        return self.decompress().to_indices()

    # -- logical operations (decode, operate, re-encode) --------------------

    def _binary_op(self, other: "BbcBitVector", name: str) -> "BbcBitVector":
        if not isinstance(other, BbcBitVector):
            raise TypeError(f"expected BbcBitVector, got {type(other).__name__}")
        _obs_record("bbc.ops")
        left = self.decompress()
        right = other.decompress()
        result = getattr(left, name)(right)
        return BbcBitVector.compress(result)

    def __and__(self, other: "BbcBitVector") -> "BbcBitVector":
        return self._binary_op(other, "__and__")

    def __or__(self, other: "BbcBitVector") -> "BbcBitVector":
        return self._binary_op(other, "__or__")

    def __xor__(self, other: "BbcBitVector") -> "BbcBitVector":
        return self._binary_op(other, "__xor__")

    def __invert__(self) -> "BbcBitVector":
        return BbcBitVector.compress(~self.decompress())

    def andnot(self, other: "BbcBitVector") -> "BbcBitVector":
        """``self & ~other``."""
        return self._binary_op(other, "andnot")

    # -- comparisons ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BbcBitVector):
            return NotImplemented
        return self._nbits == other._nbits and self._data == other._data

    def __hash__(self) -> int:
        return hash((self._nbits, self._data))

    def __repr__(self) -> str:
        return (
            f"BbcBitVector(nbits={self._nbits}, bytes={len(self._data)}, "
            f"ratio={self.compression_ratio():.3f})"
        )
