"""Byte-aligned Bitmap Code (BBC, Antoshenkov) — simplified codec.

The paper cites BBC as the main alternative to WAH: better compression
(byte-granular fills instead of WAH's 31-bit groups) but slower logical
operations.  We implement a faithful simplification with two token kinds,
distinguished by the control byte's MSB:

* **fill token** (MSB = 1): bit 6 is the fill bit; bits 0–5 give the run
  length in bytes (1..63); longer runs chain tokens.
* **literal token** (MSB = 0): bits 0–6 give the count ``m`` (1..127) of
  verbatim bytes that follow the control byte.

Logical operations on BBC decode to a verbatim :class:`BitVector`, operate,
and re-encode.  That is deliberately literal-at-query: the paper chose WAH
over BBC precisely because BBC's finer alignment makes compressed-domain
operations 2–20x slower, and this codec exists to reproduce the *size* side
of that trade-off (see the compression ablation benchmark).

The token stream is stored as a read-only ``uint8`` numpy array, and the
encode/decode passes are kernels in :mod:`repro.bitvector.kernels`, so the
codec benefits from the same pluggable backends as WAH (vectorized numpy by
default, byte-loop ``python`` reference; see ``docs/kernels.md``).
"""

from __future__ import annotations

import numpy as np

from repro.bitvector import kernels as _kernels
from repro.bitvector.bitvector import BitVector
from repro.errors import ReproError
from repro.observability import enabled as _obs_enabled
from repro.observability import record as _obs_record

_FILL_FLAG = _kernels.BBC_FILL_FLAG
_FILL_BIT = _kernels.BBC_FILL_BIT
_MAX_FILL_RUN = _kernels.BBC_MAX_FILL_RUN  # 63 bytes per fill token
_MAX_LITERAL_RUN = _kernels.BBC_MAX_LITERAL_RUN  # 127 bytes per literal token


def _as_byte_array(data: "bytes | bytearray | np.ndarray") -> np.ndarray:
    """Normalize a token stream to a read-only uint8 array.

    ``bytes`` payloads (and read-only buffer views from storage loads) are
    aliased zero-copy; writable arrays are copied so instances stay
    immutable.
    """
    if isinstance(data, np.ndarray):
        arr = data.astype(np.uint8, copy=False)
        if arr is data and arr.flags.writeable:
            arr = arr.copy()
    else:
        arr = np.frombuffer(bytes(data), dtype=np.uint8)
    if arr.flags.writeable:
        arr.setflags(write=False)
    return arr


class BbcBitVector:
    """A BBC-compressed bitvector."""

    __slots__ = ("_data", "_nbits", "_hash")

    def __init__(self, nbits: int, data: "bytes | bytearray | np.ndarray"):
        if nbits < 0:
            raise ReproError(f"nbits must be >= 0, got {nbits}")
        self._nbits = nbits
        self._data = _as_byte_array(data)
        self._hash: int | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def compress(cls, vec: BitVector) -> "BbcBitVector":
        """Compress a verbatim bitvector."""
        raw = np.packbits(vec.to_bools(), bitorder="little")
        data, fill_tokens, literal_tokens = _kernels.get_backend().bbc_encode(raw)
        if _obs_enabled():
            _obs_record("bbc.bytes_encoded", len(raw))
            _obs_record("bbc.fill_tokens", fill_tokens)
            _obs_record("bbc.literal_tokens", literal_tokens)
        return cls(vec.nbits, data)

    @classmethod
    def from_bools(cls, bools: np.ndarray) -> "BbcBitVector":
        """Compress a boolean array."""
        return cls.compress(BitVector.from_bools(bools))

    # -- accessors ---------------------------------------------------------

    @property
    def nbits(self) -> int:
        """Number of bits represented."""
        return self._nbits

    @property
    def data(self) -> np.ndarray:
        """The BBC token stream as a read-only uint8 array."""
        return self._data

    def words32(self) -> int:
        """Stored size in 32-bit word units (the paper's cost currency)."""
        return (len(self._data) + 3) // 4

    def nbytes(self) -> int:
        """Compressed payload size in bytes."""
        return len(self._data)

    def compression_ratio(self) -> float:
        """Compressed size over verbatim size; < 1 means compression helped."""
        verbatim = (self._nbits + 7) // 8
        if verbatim == 0:
            return 1.0
        return self.nbytes() / verbatim

    def decompress(self) -> BitVector:
        """Expand back to a verbatim :class:`BitVector`."""
        expected_bytes = (self._nbits + 7) // 8
        raw, tokens = _kernels.get_backend().bbc_decode(
            self._data, expected_bytes
        )
        if _obs_enabled():
            _obs_record("bbc.tokens_decoded", tokens)
            _obs_record("bbc.bytes_decoded", len(raw))
        bits = np.unpackbits(raw, bitorder="little")
        return BitVector.from_bools(bits[: self._nbits].astype(bool))

    def count(self) -> int:
        """Number of 1-bits."""
        return self.decompress().count()

    def to_indices(self) -> np.ndarray:
        """Sorted positions of the 1-bits."""
        return self.decompress().to_indices()

    # -- logical operations (decode, operate, re-encode) --------------------

    def _binary_op(self, other: "BbcBitVector", name: str) -> "BbcBitVector":
        if not isinstance(other, BbcBitVector):
            raise TypeError(f"expected BbcBitVector, got {type(other).__name__}")
        _obs_record("bbc.ops")
        left = self.decompress()
        right = other.decompress()
        result = getattr(left, name)(right)
        return BbcBitVector.compress(result)

    def __and__(self, other: "BbcBitVector") -> "BbcBitVector":
        return self._binary_op(other, "__and__")

    def __or__(self, other: "BbcBitVector") -> "BbcBitVector":
        return self._binary_op(other, "__or__")

    def __xor__(self, other: "BbcBitVector") -> "BbcBitVector":
        return self._binary_op(other, "__xor__")

    def __invert__(self) -> "BbcBitVector":
        return BbcBitVector.compress(~self.decompress())

    def andnot(self, other: "BbcBitVector") -> "BbcBitVector":
        """``self & ~other``."""
        return self._binary_op(other, "andnot")

    # -- comparisons ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BbcBitVector):
            return NotImplemented
        return self._nbits == other._nbits and bool(
            np.array_equal(self._data, other._data)
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._nbits, self._data.tobytes()))
        return self._hash

    def __repr__(self) -> str:
        return (
            f"BbcBitVector(nbits={self._nbits}, bytes={len(self._data)}, "
            f"ratio={self.compression_ratio():.3f})"
        )
