"""Bitvector engine: verbatim, WAH-compressed, and BBC-compressed bitmaps."""

from repro.bitvector.bbc import BbcBitVector
from repro.bitvector.bitvector import BitVector
from repro.bitvector.ops import (
    CODECS,
    BitVectorLike,
    OpCounter,
    big_and,
    big_or,
    make_bitvector,
    make_zeros,
)
from repro.bitvector.wah import WahBitVector

__all__ = [
    "BbcBitVector",
    "BitVector",
    "BitVectorLike",
    "CODECS",
    "OpCounter",
    "WahBitVector",
    "big_and",
    "big_or",
    "make_bitvector",
    "make_zeros",
]
