"""Bitvector engine: verbatim, WAH-compressed, and BBC-compressed bitmaps.

Word-level codec work (encode/decode/logical ops/popcount) runs on
pluggable kernel backends — see :mod:`repro.bitvector.kernels` and
``docs/kernels.md``.
"""

from repro.bitvector.bbc import BbcBitVector
from repro.bitvector.bitvector import BitVector
from repro.bitvector.kernels import (
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.bitvector.ops import (
    CODECS,
    BitVectorLike,
    OpCounter,
    big_and,
    big_or,
    make_bitvector,
    make_zeros,
    words_of,
)
from repro.bitvector.wah import WahBitVector

__all__ = [
    "BbcBitVector",
    "BitVector",
    "BitVectorLike",
    "CODECS",
    "OpCounter",
    "WahBitVector",
    "available_backends",
    "big_and",
    "big_or",
    "get_backend",
    "make_bitvector",
    "make_zeros",
    "set_backend",
    "use_backend",
    "words_of",
]
