"""Uncompressed bitvectors backed by 64-bit numpy words.

This is the verbatim (literal) representation used as the semantic reference
for the compressed codecs: every compressed bitvector must decompress to an
equal :class:`BitVector`, and every compressed logical operation must agree
with the corresponding :class:`BitVector` operation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

_WORD_BITS = 64


class BitVector:
    """A fixed-length vector of bits with word-parallel logical operations.

    Bit ``i`` of the vector is bit ``i % 64`` of word ``i // 64``.  Unused
    bits in the final word are always zero; operations preserve this
    invariant (it makes :meth:`count` and equality checks exact).
    """

    __slots__ = ("_words", "_nbits")

    def __init__(self, nbits: int, words: np.ndarray | None = None):
        if nbits < 0:
            raise ReproError(f"nbits must be >= 0, got {nbits}")
        self._nbits = nbits
        num_words = (nbits + _WORD_BITS - 1) // _WORD_BITS
        if words is None:
            self._words = np.zeros(num_words, dtype=np.uint64)
        else:
            if len(words) != num_words:
                raise ReproError(
                    f"expected {num_words} words for {nbits} bits, got {len(words)}"
                )
            words = words.astype(np.uint64, copy=False)
            if not words.flags.writeable:
                # e.g. an np.frombuffer view of a bytes payload: _mask_tail
                # and the in-place kernels need a writable buffer.
                words = words.copy()
            self._words = words
            self._mask_tail()

    def _mask_tail(self) -> None:
        tail = self._nbits % _WORD_BITS
        if tail and len(self._words):
            self._words[-1] &= np.uint64((1 << tail) - 1)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_bools(cls, bools: np.ndarray) -> "BitVector":
        """Build from a boolean (or 0/1 integer) array."""
        bools = np.asarray(bools, dtype=bool)
        nbits = len(bools)
        packed = np.packbits(bools, bitorder="little")
        num_words = (nbits + _WORD_BITS - 1) // _WORD_BITS
        padded = np.zeros(num_words * 8, dtype=np.uint8)
        padded[: len(packed)] = packed
        words = padded.view(np.uint64)
        return cls(nbits, words.copy())

    @classmethod
    def from_indices(cls, nbits: int, indices: np.ndarray) -> "BitVector":
        """Build a vector with 1-bits exactly at ``indices``."""
        bools = np.zeros(nbits, dtype=bool)
        bools[np.asarray(indices, dtype=np.int64)] = True
        return cls.from_bools(bools)

    @classmethod
    def zeros(cls, nbits: int) -> "BitVector":
        """An all-zero vector."""
        return cls(nbits)

    @classmethod
    def ones(cls, nbits: int) -> "BitVector":
        """An all-one vector."""
        vec = cls(nbits)
        vec._words[:] = np.uint64(0xFFFFFFFFFFFFFFFF)
        vec._mask_tail()
        return vec

    # -- accessors ---------------------------------------------------------

    @property
    def nbits(self) -> int:
        """Number of bits in the vector."""
        return self._nbits

    @property
    def words(self) -> np.ndarray:
        """The underlying 64-bit word array (do not mutate)."""
        return self._words

    def get(self, index: int) -> bool:
        """Value of bit ``index``."""
        if not 0 <= index < self._nbits:
            raise IndexError(f"bit index {index} out of range 0..{self._nbits - 1}")
        word = int(self._words[index // _WORD_BITS])
        return bool((word >> (index % _WORD_BITS)) & 1)

    def to_bools(self) -> np.ndarray:
        """Expand to a boolean array of length :attr:`nbits`."""
        as_bytes = self._words.view(np.uint8)
        bits = np.unpackbits(as_bytes, bitorder="little")
        return bits[: self._nbits].astype(bool)

    def to_indices(self) -> np.ndarray:
        """Sorted positions of the 1-bits."""
        return np.flatnonzero(self.to_bools())

    def count(self) -> int:
        """Number of 1-bits (population count)."""
        return int(np.bitwise_count(self._words).sum())

    def density(self) -> float:
        """Fraction of 1-bits (the paper's *bit density*)."""
        if self._nbits == 0:
            return 0.0
        return self.count() / self._nbits

    def nbytes(self) -> int:
        """Verbatim size of the bitmap in bytes: ``ceil(nbits / 8)``.

        This is the size an uncompressed on-disk bitmap would occupy, and the
        denominator of every compression ratio in the paper.
        """
        return (self._nbits + 7) // 8

    def words32(self) -> int:
        """Stored size in 32-bit word units (the paper's cost currency)."""
        return 2 * len(self._words)  # 64-bit words -> 32-bit word units

    # -- logical operations --------------------------------------------------

    def _check_compatible(self, other: "BitVector") -> None:
        if not isinstance(other, BitVector):
            raise TypeError(f"expected BitVector, got {type(other).__name__}")
        if other._nbits != self._nbits:
            raise ReproError(
                f"bitvector length mismatch: {self._nbits} vs {other._nbits}"
            )

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        return BitVector(self._nbits, self._words & other._words)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        return BitVector(self._nbits, self._words | other._words)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        return BitVector(self._nbits, self._words ^ other._words)

    def __invert__(self) -> "BitVector":
        return BitVector(self._nbits, ~self._words)

    def andnot(self, other: "BitVector") -> "BitVector":
        """``self & ~other`` in one pass."""
        self._check_compatible(other)
        return BitVector(self._nbits, self._words & ~other._words)

    # -- comparisons ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._nbits == other._nbits and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self) -> int:
        return hash((self._nbits, self._words.tobytes()))

    def __len__(self) -> int:
        return self._nbits

    def __repr__(self) -> str:
        if self._nbits <= 64:
            bits = "".join("1" if b else "0" for b in self.to_bools())
            return f"BitVector({bits!r})"
        return f"BitVector(nbits={self._nbits}, ones={self.count()})"
