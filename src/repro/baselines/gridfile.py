"""A grid file: the space-partitioning baseline (Section 1).

The paper argues that, like hierarchical indexes, "space partitioning
multi-dimensional indexing techniques would also suffer from the same
weaknesses in the presence of missing data. Records with missing data
values would get mapped to lesser-dimensioned spaces, and the full benefit
of data space partitioning would not be realized."

This grid file partitions each attribute's domain (including the sentinel
missing coordinate 0) into fixed-width strips, hashes every record to its
cell, and answers range queries by visiting all overlapping cells.  Under
missing-is-a-match semantics the usual ``2**k`` subspace expansion applies:
the sentinel strips concentrate records into lower-dimensional slabs, so
cells there are heavily overfull and the visit counts degrade exactly the
way the paper predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations, product
from typing import Iterable

import numpy as np

from repro.dataset.table import IncompleteTable
from repro.errors import IndexBuildError, QueryError
from repro.query.model import MissingSemantics, RangeQuery


@dataclass
class GridQueryStats:
    """Work done by grid-file query executions."""

    #: Grid cells visited across all subqueries.
    cells_visited: int = 0
    #: Records inspected inside visited cells.
    records_inspected: int = 0
    #: Box subqueries issued (``2**k`` under missing-is-a-match).
    subqueries: int = 0
    #: Queries executed.
    queries: int = 0


class GridFileIndex:
    """Fixed-grid space-partitioning index over sentinel-completed points.

    Parameters
    ----------
    table:
        The table to index.
    attributes:
        Attributes forming the grid dimensions; defaults to all.
    strips_per_dim:
        Value strips per attribute (the sentinel 0 always gets its own
        strip, so an attribute contributes ``strips_per_dim + 1`` slices
        when it has missing data).
    """

    def __init__(
        self,
        table: IncompleteTable,
        attributes: Iterable[str] | None = None,
        strips_per_dim: int = 8,
    ):
        if attributes is None:
            attributes = table.schema.names
        self._names = list(attributes)
        if not self._names:
            raise IndexBuildError("grid file requires at least one attribute")
        if strips_per_dim < 1:
            raise IndexBuildError(
                f"strips_per_dim must be >= 1, got {strips_per_dim}"
            )
        self._strips = strips_per_dim
        self._cardinalities = {
            name: table.schema.cardinality(name) for name in self._names
        }
        self._has_missing = {
            name: bool(table.missing_mask(name).any()) for name in self._names
        }
        # Strip index per record per dimension: strip 0 is the sentinel.
        self._table = table
        self._cells: dict[tuple[int, ...], list[int]] = {}
        strip_indexes = np.column_stack(
            [self._strip_of(table.column(name), name) for name in self._names]
        )
        for record_id, key in enumerate(map(tuple, strip_indexes.tolist())):
            self._cells.setdefault(key, []).append(record_id)

    def _strip_of(self, values: np.ndarray, name: str) -> np.ndarray:
        """Strip index for coded values: 0 for missing, 1..strips otherwise."""
        cardinality = self._cardinalities[name]
        strips = min(self._strips, cardinality)
        strip = (values - 1) * strips // cardinality + 1
        strip[values == 0] = 0
        return strip

    def _strip_range(self, name: str, lo: int, hi: int) -> range:
        cardinality = self._cardinalities[name]
        strips = min(self._strips, cardinality)
        lo_strip = (lo - 1) * strips // cardinality + 1
        hi_strip = (hi - 1) * strips // cardinality + 1
        return range(lo_strip, hi_strip + 1)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Grid dimensions, in coordinate order."""
        return tuple(self._names)

    @property
    def num_cells(self) -> int:
        """Number of non-empty grid cells."""
        return len(self._cells)

    def occupancy(self) -> dict[tuple[int, ...], int]:
        """Record count per non-empty cell."""
        return {key: len(ids) for key, ids in self._cells.items()}

    def execute_ids(
        self,
        query: RangeQuery,
        semantics: MissingSemantics = MissingSemantics.IS_MATCH,
        stats: GridQueryStats | None = None,
    ) -> np.ndarray:
        """Exact sorted record ids, visiting every overlapping cell."""
        for name in query.attributes:
            if name not in self._cardinalities:
                raise QueryError(
                    f"attribute {name!r} is not a grid dimension"
                )
        axis_of = {name: axis for axis, name in enumerate(self._names)}
        query_axes = [
            axis_of[name]
            for name in query.attributes
            if self._has_missing[name]
        ]
        if semantics is MissingSemantics.NOT_MATCH:
            subsets: Iterable[tuple[int, ...]] = [()]
        else:
            subsets = (
                subset
                for r in range(len(query_axes) + 1)
                for subset in combinations(query_axes, r)
            )
        matches: list[int] = []
        cells_visited = 0
        records_inspected = 0
        subqueries = 0
        for subset in subsets:
            subqueries += 1
            per_axis_strips: list[range | list[int]] = []
            for axis, name in enumerate(self._names):
                if axis in subset:
                    per_axis_strips.append([0])
                elif name in query:
                    interval = query.interval(name)
                    per_axis_strips.append(
                        self._strip_range(name, interval.lo, interval.hi)
                    )
                else:
                    strips = min(self._strips, self._cardinalities[name])
                    full = list(range(0, strips + 1))
                    per_axis_strips.append(full)
            for key in product(*per_axis_strips):
                cell = self._cells.get(key)
                if cell is None:
                    continue
                cells_visited += 1
                records_inspected += len(cell)
                for record_id in cell:
                    if self._record_matches(record_id, query, subset, axis_of):
                        matches.append(record_id)
        if stats is not None:
            stats.cells_visited += cells_visited
            stats.records_inspected += records_inspected
            stats.subqueries += subqueries
            stats.queries += 1
        return np.unique(np.asarray(matches, dtype=np.int64))

    def _record_matches(
        self, record_id: int, query: RangeQuery, subset, axis_of
    ) -> bool:
        for name, interval in query.items():
            value = int(self._table.column(name)[record_id])
            axis = axis_of[name]
            if axis in subset:
                if value != 0:
                    return False
            else:
                if not (interval.lo <= value <= interval.hi):
                    return False
        return True
