"""MOSAIC: multiple one-dimensional one-attribute indexes (Ooi et al. [12]).

MOSAIC indexes each attribute with its own B+-tree, mapping missing data to
a distinguished key (0, below the domain).  A ``k``-attribute query is
decomposed into ``k`` one-dimensional lookups whose record-id sets are then
intersected — the "expensive set operations" the paper contrasts its bitmap
solution against.  Under missing-is-a-match each per-attribute lookup also
unions in the postings of the distinguished missing key (the per-attribute
subquery doubling the related-work section describes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.baselines.bptree import BPlusTree
from repro.dataset.schema import MISSING
from repro.dataset.table import IncompleteTable
from repro.errors import DomainError, IndexBuildError, QueryError
from repro.query.model import MissingSemantics, RangeQuery


@dataclass
class MosaicStats:
    """Work done by MOSAIC query executions."""

    #: B+-tree node visits across all lookups.
    node_accesses: int = 0
    #: Record ids materialized from posting lists before set operations.
    ids_materialized: int = 0
    #: Set (intersection/union) operations performed.
    set_operations: int = 0
    #: Queries executed.
    queries: int = 0


class MosaicIndex:
    """One B+-tree per attribute with missing data as a distinguished key."""

    def __init__(
        self,
        table: IncompleteTable,
        attributes: Iterable[str] | None = None,
        max_keys: int = 32,
    ):
        if attributes is None:
            attributes = table.schema.names
        names = list(attributes)
        if not names:
            raise IndexBuildError("MOSAIC requires at least one attribute")
        self._num_records = table.num_records
        self._cardinalities = {
            name: table.schema.cardinality(name) for name in names
        }
        self._trees: dict[str, BPlusTree] = {}
        for name in names:
            tree = BPlusTree(max_keys=max_keys)
            for record_id, value in enumerate(table.column(name)):
                tree.insert(int(value), record_id)  # MISSING == key 0
            self._trees[name] = tree

    @property
    def attributes(self) -> tuple[str, ...]:
        """Indexed attribute names."""
        return tuple(self._trees)

    def tree(self, attribute: str) -> BPlusTree:
        """The B+-tree for one attribute."""
        try:
            return self._trees[attribute]
        except KeyError:
            raise QueryError(f"attribute {attribute!r} is not indexed by MOSAIC")

    def execute_ids(
        self,
        query: RangeQuery,
        semantics: MissingSemantics = MissingSemantics.IS_MATCH,
        stats: MosaicStats | None = None,
    ) -> np.ndarray:
        """Exact sorted record ids: per-attribute lookups then intersections."""
        result: np.ndarray | None = None
        for name, interval in query.items():
            tree = self.tree(name)
            if interval.hi > self._cardinalities[name]:
                raise DomainError(
                    f"interval {interval} exceeds domain "
                    f"1..{self._cardinalities[name]} of attribute {name!r}"
                )
            before = tree.node_accesses
            ids = tree.range_search(interval.lo, interval.hi)
            if semantics is MissingSemantics.IS_MATCH:
                ids = ids + tree.search(MISSING)
                if stats is not None:
                    stats.set_operations += 1  # the per-attribute union
            if stats is not None:
                stats.node_accesses += tree.node_accesses - before
                stats.ids_materialized += len(ids)
            attr_ids = np.unique(np.asarray(ids, dtype=np.int64))
            if result is None:
                result = attr_ids
            else:
                result = np.intersect1d(result, attr_ids, assume_unique=True)
                if stats is not None:
                    stats.set_operations += 1
        if stats is not None:
            stats.queries += 1
        assert result is not None  # RangeQuery guarantees >= 1 interval
        return result
