"""Baseline access methods: sequential scan, B+-trees, MOSAIC, R-trees."""

from repro.baselines.bitstring import BitstringAugmentedIndex, BitstringQueryStats
from repro.baselines.bptree import BPlusTree
from repro.baselines.gridfile import GridFileIndex, GridQueryStats
from repro.baselines.mosaic import MosaicIndex, MosaicStats
from repro.baselines.rtree import RTree
from repro.baselines.sentinel_rtree import (
    SENTINEL,
    RTreeQueryStats,
    SentinelRTreeIndex,
)
from repro.baselines.seqscan import ScanStats, SequentialScan

__all__ = [
    "BPlusTree",
    "BitstringAugmentedIndex",
    "BitstringQueryStats",
    "GridFileIndex",
    "GridQueryStats",
    "MosaicIndex",
    "MosaicStats",
    "RTree",
    "RTreeQueryStats",
    "SENTINEL",
    "ScanStats",
    "SentinelRTreeIndex",
    "SequentialScan",
]
