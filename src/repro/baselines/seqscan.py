"""Sequential scan: the no-index baseline every technique must beat.

Evaluates queries by comparing every record's coded values directly, exactly
like the ground-truth oracle, but packaged as an index-like object with work
accounting so experiments can report it alongside the real techniques.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.table import IncompleteTable
from repro.query.ground_truth import evaluate_mask
from repro.query.model import MissingSemantics, RangeQuery


@dataclass
class ScanStats:
    """Work done by sequential-scan query executions."""

    #: Table cells compared (n per query dimension).
    cells_scanned: int = 0
    #: Queries executed.
    queries: int = 0


class SequentialScan:
    """Full-table scan execution over an incomplete table."""

    def __init__(self, table: IncompleteTable):
        self._table = table

    @property
    def num_records(self) -> int:
        """Number of records scanned per query dimension."""
        return self._table.num_records

    def execute_ids(
        self,
        query: RangeQuery,
        semantics: MissingSemantics = MissingSemantics.IS_MATCH,
        stats: ScanStats | None = None,
    ) -> np.ndarray:
        """Exact sorted record ids by direct column comparison."""
        mask = evaluate_mask(self._table, query, semantics)
        if stats is not None:
            stats.cells_scanned += self._table.num_records * query.dimensionality
            stats.queries += 1
        return np.flatnonzero(mask)
