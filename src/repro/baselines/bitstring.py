"""The bitstring-augmented index of Ooi, Goh, and Tan [12].

Missing values are replaced by the *average of the attribute's non-missing
values* ("the goal is to avoid skewing the data"), the completed points are
indexed with a multi-dimensional structure (an R-tree here), and each record
is augmented with a bitstring recording which attributes were actually
missing.

Query execution under missing-is-a-match requires the ``2**k`` subquery
expansion the related-work section describes: one subquery per subset ``S``
of search-key attributes treated as missing, pinning those attributes to
their means and filtering candidates by bitstring (a record qualifies for
subquery ``S`` iff its missing pattern restricted to the search key is
exactly ``S``).  Under missing-is-not-a-match a single box query suffices,
followed by a bitstring filter to drop mean-imputed false positives.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

import numpy as np

from repro.baselines.rtree import RTree
from repro.dataset.table import IncompleteTable
from repro.errors import IndexBuildError, QueryError
from repro.query.model import MissingSemantics, RangeQuery


@dataclass
class BitstringQueryStats:
    """Work done by bitstring-augmented query executions."""

    #: R-tree nodes visited across all subqueries.
    node_accesses: int = 0
    #: Box subqueries issued (``2**k`` under missing-is-a-match).
    subqueries: int = 0
    #: Candidate records checked against their bitstring.
    bitstring_checks: int = 0
    #: Queries executed.
    queries: int = 0


class BitstringAugmentedIndex:
    """Mean-imputed R-tree plus per-record missing-pattern bitstrings."""

    def __init__(
        self,
        table: IncompleteTable,
        attributes: Iterable[str] | None = None,
        max_entries: int = 16,
        bulk: bool = True,
    ):
        if attributes is None:
            attributes = table.schema.names
        self._names = list(attributes)
        if not self._names:
            raise IndexBuildError(
                "bitstring-augmented index requires at least one attribute"
            )
        n = table.num_records
        points = np.empty((n, len(self._names)), dtype=np.float64)
        missing = np.empty((n, len(self._names)), dtype=bool)
        self._means: dict[str, float] = {}
        for axis, name in enumerate(self._names):
            column = table.column(name).astype(np.float64)
            is_missing = column == 0.0
            present = column[~is_missing]
            # Mean of the non-missing values; midpoint of the domain when the
            # whole column is missing.
            mean = (
                float(present.mean())
                if len(present)
                else (table.schema.cardinality(name) + 1) / 2.0
            )
            self._means[name] = mean
            points[:, axis] = np.where(is_missing, mean, column)
            missing[:, axis] = is_missing
        self._missing = missing
        if bulk:
            self._rtree = RTree.bulk_load(points, max_entries=max_entries)
        else:
            self._rtree = RTree(ndims=len(self._names), max_entries=max_entries)
            for record_id, point in enumerate(points):
                self._rtree.insert(point, record_id)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Indexed attribute names, in point-coordinate order."""
        return tuple(self._names)

    def mean(self, attribute: str) -> float:
        """The imputation mean used for one attribute."""
        try:
            return self._means[attribute]
        except KeyError:
            raise QueryError(f"attribute {attribute!r} is not indexed")

    def execute_ids(
        self,
        query: RangeQuery,
        semantics: MissingSemantics = MissingSemantics.IS_MATCH,
        stats: BitstringQueryStats | None = None,
    ) -> np.ndarray:
        """Exact sorted record ids via subquery expansion + bitstring filter."""
        axis_of = {name: axis for axis, name in enumerate(self._names)}
        for name in query.attributes:
            if name not in axis_of:
                raise QueryError(
                    f"attribute {name!r} is not part of this index's space"
                )
        lo = np.full(len(self._names), -np.inf)
        hi = np.full(len(self._names), np.inf)
        for name, interval in query.items():
            lo[axis_of[name]] = float(interval.lo)
            hi[axis_of[name]] = float(interval.hi)
        query_axes = [axis_of[name] for name in query.attributes]
        before = self._rtree.node_accesses

        matches: list[int] = []
        subqueries = 0
        checks = 0
        if semantics is MissingSemantics.NOT_MATCH:
            subsets: Iterable[tuple[int, ...]] = [()]
        else:
            subsets = (
                subset
                for r in range(len(query_axes) + 1)
                for subset in combinations(query_axes, r)
            )
        for subset in subsets:
            sub_lo = lo.copy()
            sub_hi = hi.copy()
            for axis in subset:
                mean = self._means[self._names[axis]]
                sub_lo[axis] = mean
                sub_hi[axis] = mean
            candidates = self._rtree.range_search(sub_lo, sub_hi)
            subqueries += 1
            subset_set = frozenset(subset)
            for record_id in candidates:
                checks += 1
                pattern = {
                    axis for axis in query_axes if self._missing[record_id, axis]
                }
                if pattern == subset_set:
                    matches.append(record_id)
        if stats is not None:
            stats.node_accesses += self._rtree.node_accesses - before
            stats.subqueries += subqueries
            stats.bitstring_checks += checks
            stats.queries += 1
        return np.unique(np.asarray(matches, dtype=np.int64))
