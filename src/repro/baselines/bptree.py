"""An in-memory B+-tree mapping integer keys to record-id postings.

This is the substrate for MOSAIC (Ooi, Goh, Tan [12]): one B+-tree per
attribute, keyed by the coded attribute value (0 = the distinguished missing
value).  Duplicate keys are handled with per-key posting lists in the
leaves; leaves are chained for range scans.

The implementation is a textbook B+-tree (order ``max_keys``): internal
nodes hold separator keys and children, leaves hold sorted keys plus posting
lists.  ``node_accesses`` counts every node visited, which stands in for the
page reads a disk-resident tree would issue.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import IndexBuildError


class _Node:
    __slots__ = ("keys", "children", "postings", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: list[int] = []
        self.children: list[_Node] = []  # internal nodes only
        self.postings: list[list[int]] = []  # leaves only
        self.next_leaf: _Node | None = None  # leaves only


class BPlusTree:
    """A B+-tree over integer keys with duplicate support.

    Parameters
    ----------
    max_keys:
        Maximum keys per node before a split (the tree's order); must be >= 3.
    """

    def __init__(self, max_keys: int = 32):
        if max_keys < 3:
            raise IndexBuildError(f"max_keys must be >= 3, got {max_keys}")
        self._max_keys = max_keys
        self._root = _Node(is_leaf=True)
        self._num_keys = 0
        self._num_entries = 0
        #: Nodes visited by searches since construction (reset freely).
        self.node_accesses = 0

    # -- insertion -----------------------------------------------------------

    def insert(self, key: int, record_id: int) -> None:
        """Insert one ``(key, record_id)`` pair."""
        split = self._insert_into(self._root, key, record_id)
        if split is not None:
            sep_key, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep_key]
            new_root.children = [self._root, right]
            self._root = new_root
        self._num_entries += 1

    def _insert_into(self, node: _Node, key: int, record_id: int):
        if node.is_leaf:
            idx = _lower_bound(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.postings[idx].append(record_id)
            else:
                node.keys.insert(idx, key)
                node.postings.insert(idx, [record_id])
                self._num_keys += 1
            if len(node.keys) > self._max_keys:
                return self._split_leaf(node)
            return None
        idx = _upper_bound(node.keys, key)
        split = self._insert_into(node.children[idx], key, record_id)
        if split is not None:
            sep_key, right = split
            node.keys.insert(idx, sep_key)
            node.children.insert(idx + 1, right)
            if len(node.keys) > self._max_keys:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node):
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.postings = node.postings[mid:]
        node.keys = node.keys[:mid]
        node.postings = node.postings[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node):
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep_key, right

    # -- search ----------------------------------------------------------------

    def _descend_to_leaf(self, key: int) -> _Node:
        node = self._root
        self.node_accesses += 1
        while not node.is_leaf:
            idx = _upper_bound(node.keys, key)
            node = node.children[idx]
            self.node_accesses += 1
        return node

    def search(self, key: int) -> list[int]:
        """Record ids for an exact key (empty list when absent)."""
        leaf = self._descend_to_leaf(key)
        idx = _lower_bound(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.postings[idx])
        return []

    def range_search(self, lo: int, hi: int) -> list[int]:
        """Record ids for all keys in ``[lo, hi]`` (unsorted, concatenated)."""
        if hi < lo:
            return []
        results: list[int] = []
        leaf = self._descend_to_leaf(lo)
        idx = _lower_bound(leaf.keys, lo)
        while leaf is not None:
            while idx < len(leaf.keys):
                if leaf.keys[idx] > hi:
                    return results
                results.extend(leaf.postings[idx])
                idx += 1
            leaf = leaf.next_leaf
            idx = 0
            if leaf is not None:
                self.node_accesses += 1
        return results

    def items(self) -> Iterator[tuple[int, list[int]]]:
        """All ``(key, postings)`` pairs in key order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.postings)
            node = node.next_leaf

    # -- introspection -----------------------------------------------------------

    @property
    def num_keys(self) -> int:
        """Distinct keys stored."""
        return self._num_keys

    @property
    def num_entries(self) -> int:
        """Total ``(key, record)`` pairs stored."""
        return self._num_entries

    def height(self) -> int:
        """Tree height (1 for a lone leaf)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def check_invariants(self) -> None:
        """Assert structural invariants; used by property-based tests."""
        self._check_node(self._root, None, None, is_root=True)
        # Leaf chain must visit every key in ascending order.
        keys = [key for key, _ in self.items()]
        if keys != sorted(keys):
            raise AssertionError("leaf chain out of order")
        if len(keys) != self._num_keys:
            raise AssertionError(
                f"leaf chain has {len(keys)} keys, expected {self._num_keys}"
            )

    def _check_node(self, node: _Node, lo, hi, *, is_root: bool = False) -> int:
        if node.keys != sorted(node.keys):
            raise AssertionError("node keys out of order")
        if len(node.keys) > self._max_keys:
            raise AssertionError("node overflow")
        if not is_root and len(node.keys) < 1:
            raise AssertionError("non-root node is empty")
        for key in node.keys:
            if lo is not None and key < lo:
                raise AssertionError("key below subtree bound")
            if hi is not None and key >= hi:
                raise AssertionError("key above subtree bound")
        if node.is_leaf:
            if len(node.postings) != len(node.keys):
                raise AssertionError("posting/key count mismatch")
            return 1
        if len(node.children) != len(node.keys) + 1:
            raise AssertionError("child/key count mismatch")
        depths = set()
        bounds = [lo, *node.keys, hi]
        for child, (clo, chi) in zip(node.children, zip(bounds, bounds[1:])):
            depths.add(self._check_node(child, clo, chi))
        if len(depths) != 1:
            raise AssertionError("unbalanced subtree depths")
        return depths.pop() + 1


def _lower_bound(keys: list[int], key: int) -> int:
    import bisect

    return bisect.bisect_left(keys, key)


def _upper_bound(keys: list[int], key: int) -> int:
    import bisect

    return bisect.bisect_right(keys, key)
