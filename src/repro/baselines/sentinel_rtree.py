"""Hierarchical indexing of incomplete data via sentinel values (Figure 1).

This is the strawman the paper's motivating experiment measures: map every
missing value to a sentinel outside the domain (we use 0, just below the
``1..C`` domain), build a multi-dimensional R-tree over the now-"complete"
points, and answer queries.

Under missing-is-a-match semantics the single range query must become
``2**k`` subqueries — one per subset of search-key attributes allowed to be
missing — because matching records live in ``2**k`` distinct subspaces (the
sentinel hyperplanes and their intersections).  This is exactly the
exponential blow-up the paper uses to motivate per-attribute indexing.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable

import numpy as np

from repro.baselines.rtree import RTree
from repro.dataset.schema import MISSING
from repro.dataset.table import IncompleteTable
from repro.errors import IndexBuildError, QueryError
from repro.query.model import MissingSemantics, RangeQuery

#: Sentinel coordinate for missing values (below every domain value).
SENTINEL = float(MISSING)


@dataclass
class RTreeQueryStats:
    """Work done by sentinel R-tree query executions."""

    #: R-tree nodes visited across all subqueries.
    node_accesses: int = 0
    #: Box subqueries issued (``2**k`` under missing-is-a-match).
    subqueries: int = 0
    #: Queries executed.
    queries: int = 0


class SentinelRTreeIndex:
    """R-tree over sentinel-completed points, with subquery expansion.

    Parameters
    ----------
    table:
        The table to index.
    attributes:
        The attributes forming the indexed space; defaults to all.
    max_entries:
        R-tree node capacity.
    bulk:
        Build with STR bulk loading instead of one-by-one insertion.
        Figure 1 uses dynamic insertion (the overlap pathology the paper
        describes arises from insert-driven splits).
    """

    def __init__(
        self,
        table: IncompleteTable,
        attributes: Iterable[str] | None = None,
        max_entries: int = 16,
        bulk: bool = False,
    ):
        if attributes is None:
            attributes = table.schema.names
        self._names = list(attributes)
        if not self._names:
            raise IndexBuildError("sentinel R-tree requires at least one attribute")
        points = np.column_stack(
            [table.column(name).astype(np.float64) for name in self._names]
        )
        # Missing is already coded 0 == SENTINEL; no remapping needed.  Track
        # which attributes actually contain missing data: subquery expansion
        # only needs to probe sentinel planes that can hold records.
        self._has_missing = {
            name: bool(table.missing_mask(name).any()) for name in self._names
        }
        if bulk:
            self._rtree = RTree.bulk_load(points, max_entries=max_entries)
        else:
            self._rtree = RTree(ndims=len(self._names), max_entries=max_entries)
            for record_id, point in enumerate(points):
                self._rtree.insert(point, record_id)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Indexed attribute names, in point-coordinate order."""
        return tuple(self._names)

    @property
    def rtree(self) -> RTree:
        """The underlying R-tree."""
        return self._rtree

    def _bounds_for(self, query: RangeQuery) -> tuple[np.ndarray, np.ndarray]:
        lo = np.empty(len(self._names))
        hi = np.empty(len(self._names))
        for axis, name in enumerate(self._names):
            if name in query:
                interval = query.interval(name)
                lo[axis] = float(interval.lo)
                hi[axis] = float(interval.hi)
            else:
                lo[axis] = -np.inf
                hi[axis] = np.inf
        return lo, hi

    def execute_ids(
        self,
        query: RangeQuery,
        semantics: MissingSemantics = MissingSemantics.IS_MATCH,
        stats: RTreeQueryStats | None = None,
    ) -> np.ndarray:
        """Exact sorted record ids, expanding to ``2**k`` boxes when needed."""
        for name in query.attributes:
            if name not in self._names:
                raise QueryError(
                    f"attribute {name!r} is not part of this R-tree's space"
                )
        lo, hi = self._bounds_for(query)
        before = self._rtree.node_accesses
        if semantics is MissingSemantics.NOT_MATCH:
            # One box: the sentinel (0) lies below every valid lower bound,
            # so missing records are excluded automatically.
            ids = self._rtree.range_search(lo, hi)
            subqueries = 1
        else:
            # One subquery per subset of query attributes treated as missing
            # (attributes with no missing data at all need no sentinel probe).
            query_axes = [
                axis
                for axis, name in enumerate(self._names)
                if name in query and self._has_missing[name]
            ]
            ids = []
            subqueries = 0
            for r in range(len(query_axes) + 1):
                for subset in combinations(query_axes, r):
                    sub_lo = lo.copy()
                    sub_hi = hi.copy()
                    for axis in subset:
                        sub_lo[axis] = SENTINEL
                        sub_hi[axis] = SENTINEL
                    ids.extend(self._rtree.range_search(sub_lo, sub_hi))
                    subqueries += 1
        if stats is not None:
            stats.node_accesses += self._rtree.node_accesses - before
            stats.subqueries += subqueries
            stats.queries += 1
        return np.unique(np.asarray(ids, dtype=np.int64))
