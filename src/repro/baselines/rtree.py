"""An R-tree over multi-dimensional points (Guttman, quadratic split).

This is the hierarchical multi-dimensional baseline of the paper's
motivating experiment (Figure 1): index a dataset whose missing values have
been mapped to a sentinel value outside the domain, then watch range-query
performance collapse as the missing-data percentage grows, because records
collapse onto sentinel hyperplanes and the bounding boxes overlap heavily.

``node_accesses`` counts every node visited during a search — the
hardware-independent stand-in for the page reads (and hence wall-clock time)
of a disk-resident tree.  Both dynamic insertion (used by Figure 1, since
overlap pathologies arise during insert-driven splits) and STR bulk loading
are provided.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import IndexBuildError


class _RNode:
    __slots__ = ("is_leaf", "entries", "lo", "hi")

    def __init__(self, is_leaf: bool, ndims: int):
        self.is_leaf = is_leaf
        #: Leaf entries are (point, record_id); internal entries are child nodes.
        self.entries: list = []
        self.lo = np.full(ndims, np.inf)
        self.hi = np.full(ndims, -np.inf)

    def recompute_box(self) -> None:
        if self.is_leaf:
            points = np.array([point for point, _ in self.entries])
            self.lo = points.min(axis=0)
            self.hi = points.max(axis=0)
        else:
            self.lo = np.min([child.lo for child in self.entries], axis=0)
            self.hi = np.max([child.hi for child in self.entries], axis=0)


def _enlargement(lo: np.ndarray, hi: np.ndarray, point: np.ndarray) -> float:
    new_lo = np.minimum(lo, point)
    new_hi = np.maximum(hi, point)
    return float(np.prod(new_hi - new_lo) - np.prod(hi - lo))


class RTree:
    """A point R-tree with quadratic-split insertion and STR bulk loading.

    Parameters
    ----------
    ndims:
        Number of dimensions of every indexed point.
    max_entries:
        Node capacity; ``min_entries`` defaults to ``max_entries // 2``.
    """

    def __init__(self, ndims: int, max_entries: int = 16):
        if ndims < 1:
            raise IndexBuildError(f"ndims must be >= 1, got {ndims}")
        if max_entries < 4:
            raise IndexBuildError(f"max_entries must be >= 4, got {max_entries}")
        self._ndims = ndims
        self._max_entries = max_entries
        self._min_entries = max_entries // 2
        self._root = _RNode(is_leaf=True, ndims=ndims)
        self._size = 0
        self._bulk_loaded = False
        #: Nodes visited by searches since construction (reset freely).
        self.node_accesses = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def bulk_load(
        cls, points: np.ndarray, ndims: int | None = None, max_entries: int = 16
    ) -> "RTree":
        """Build via Sort-Tile-Recursive packing (fast, low overlap)."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise IndexBuildError("bulk_load expects a 2-D (n, d) point array")
        n, d = points.shape
        tree = cls(ndims or d, max_entries)
        if n == 0:
            return tree
        record_ids = np.arange(n)
        leaves = tree._str_pack_leaves(points, record_ids)
        tree._root = tree._str_build_upper(leaves)
        tree._size = n
        tree._bulk_loaded = True
        return tree

    def _str_pack_leaves(
        self, points: np.ndarray, record_ids: np.ndarray
    ) -> list[_RNode]:
        order = self._str_order(points)
        leaves = []
        for start in range(0, len(order), self._max_entries):
            chunk = order[start : start + self._max_entries]
            leaf = _RNode(is_leaf=True, ndims=self._ndims)
            leaf.entries = [
                (points[i], int(record_ids[i])) for i in chunk
            ]
            leaf.recompute_box()
            leaves.append(leaf)
        return leaves

    def _str_order(self, points: np.ndarray) -> np.ndarray:
        """Recursive sort-tile ordering of point indices."""
        n, d = points.shape
        order = np.arange(n)

        def tile(indices: np.ndarray, dim: int) -> np.ndarray:
            if dim >= d - 1 or len(indices) <= self._max_entries:
                return indices[np.argsort(points[indices, dim], kind="stable")]
            indices = indices[np.argsort(points[indices, dim], kind="stable")]
            remaining_dims = d - dim
            leaves_needed = -(-len(indices) // self._max_entries)
            slabs = max(1, round(leaves_needed ** (1.0 / remaining_dims)))
            slab_size = -(-len(indices) // slabs)
            parts = [
                tile(indices[s : s + slab_size], dim + 1)
                for s in range(0, len(indices), slab_size)
            ]
            return np.concatenate(parts)

        return tile(order, 0)

    def _str_build_upper(self, nodes: list[_RNode]) -> _RNode:
        while len(nodes) > 1:
            parents = []
            for start in range(0, len(nodes), self._max_entries):
                parent = _RNode(is_leaf=False, ndims=self._ndims)
                parent.entries = nodes[start : start + self._max_entries]
                parent.recompute_box()
                parents.append(parent)
            nodes = parents
        return nodes[0]

    def insert(self, point: Sequence[float], record_id: int) -> None:
        """Insert one point dynamically (Guttman, quadratic split)."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self._ndims,):
            raise IndexBuildError(
                f"point has shape {point.shape}, expected ({self._ndims},)"
            )
        split = self._insert_into(self._root, point, record_id)
        if split is not None:
            old_root = self._root
            new_root = _RNode(is_leaf=False, ndims=self._ndims)
            new_root.entries = [old_root, split]
            new_root.recompute_box()
            self._root = new_root
        self._size += 1

    def _insert_into(self, node: _RNode, point: np.ndarray, record_id: int):
        if node.is_leaf:
            node.entries.append((point, record_id))
            node.lo = np.minimum(node.lo, point)
            node.hi = np.maximum(node.hi, point)
            if len(node.entries) > self._max_entries:
                return self._split(node)
            return None
        best = min(
            node.entries, key=lambda child: _enlargement(child.lo, child.hi, point)
        )
        split = self._insert_into(best, point, record_id)
        node.lo = np.minimum(node.lo, point)
        node.hi = np.maximum(node.hi, point)
        if split is not None:
            node.entries.append(split)
            if len(node.entries) > self._max_entries:
                return self._split(node)
        return None

    def _split(self, node: _RNode) -> _RNode:
        """Quadratic split; mutates ``node`` in place, returns the new sibling."""
        boxes = self._entry_boxes(node)
        seed_a, seed_b = self._pick_seeds(boxes)
        groups: tuple[list[int], list[int]] = ([seed_a], [seed_b])
        box_lo = [boxes[seed_a][0].copy(), boxes[seed_b][0].copy()]
        box_hi = [boxes[seed_a][1].copy(), boxes[seed_b][1].copy()]
        rest = [i for i in range(len(boxes)) if i not in (seed_a, seed_b)]
        for i in rest:
            lo, hi = boxes[i]
            # Force-assign when one group must absorb the remainder to stay
            # above the minimum fill.
            need = [
                self._min_entries - len(groups[g]) for g in (0, 1)
            ]
            remaining = len(rest) - sum(len(g) for g in groups) + 2
            assigned = None
            for g in (0, 1):
                if need[g] >= remaining:
                    assigned = g
            if assigned is None:
                growth = [
                    float(
                        np.prod(np.maximum(box_hi[g], hi) - np.minimum(box_lo[g], lo))
                        - np.prod(box_hi[g] - box_lo[g])
                    )
                    for g in (0, 1)
                ]
                assigned = 0 if growth[0] <= growth[1] else 1
            groups[assigned].append(i)
            box_lo[assigned] = np.minimum(box_lo[assigned], lo)
            box_hi[assigned] = np.maximum(box_hi[assigned], hi)
        entries = node.entries
        sibling = _RNode(is_leaf=node.is_leaf, ndims=self._ndims)
        node.entries = [entries[i] for i in groups[0]]
        sibling.entries = [entries[i] for i in groups[1]]
        node.recompute_box()
        sibling.recompute_box()
        return sibling

    def _entry_boxes(self, node: _RNode) -> list[tuple[np.ndarray, np.ndarray]]:
        if node.is_leaf:
            return [(point, point) for point, _ in node.entries]
        return [(child.lo, child.hi) for child in node.entries]

    @staticmethod
    def _pick_seeds(boxes: list[tuple[np.ndarray, np.ndarray]]) -> tuple[int, int]:
        worst = -np.inf
        seeds = (0, 1)
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                lo = np.minimum(boxes[i][0], boxes[j][0])
                hi = np.maximum(boxes[i][1], boxes[j][1])
                waste = float(
                    np.prod(hi - lo)
                    - np.prod(boxes[i][1] - boxes[i][0])
                    - np.prod(boxes[j][1] - boxes[j][0])
                )
                if waste > worst:
                    worst = waste
                    seeds = (i, j)
        return seeds

    # -- search ----------------------------------------------------------------

    def range_search(
        self, lo: Sequence[float], hi: Sequence[float]
    ) -> list[int]:
        """Record ids of points inside the closed box ``[lo, hi]``."""
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        results: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.node_accesses += 1
            if node.is_leaf:
                for point, record_id in node.entries:
                    if bool(np.all(point >= lo) and np.all(point <= hi)):
                        results.append(record_id)
            else:
                for child in node.entries:
                    if bool(np.all(child.lo <= hi) and np.all(child.hi >= lo)):
                        stack.append(child)
        return results

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def height(self) -> int:
        """Tree height (1 for a lone leaf)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.entries[0]
            height += 1
        return height

    def check_invariants(self) -> None:
        """Assert bounding-box containment and fill invariants.

        Minimum-fill applies only to dynamically built trees: STR packing
        legitimately leaves the final node of each level underfilled.
        """
        self._check_node(self._root, is_root=True)

    def _check_node(self, node: _RNode, *, is_root: bool = False) -> int:
        if (
            not is_root
            and not self._bulk_loaded
            and len(node.entries) < self._min_entries
        ):
            raise AssertionError("node underfilled")
        if len(node.entries) > self._max_entries:
            raise AssertionError("node overfilled")
        if node.is_leaf:
            for point, _ in node.entries:
                if not (np.all(point >= node.lo) and np.all(point <= node.hi)):
                    raise AssertionError("leaf box does not contain its points")
            return 1
        depths = set()
        for child in node.entries:
            if not (np.all(child.lo >= node.lo) and np.all(child.hi <= node.hi)):
                raise AssertionError("child box escapes parent box")
            depths.add(self._check_node(child))
        if len(depths) != 1:
            raise AssertionError("unbalanced R-tree")
        return depths.pop() + 1
