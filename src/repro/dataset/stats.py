"""Dataset profiling: reproduce the composition tables (Table 7) from data.

Given any :class:`~repro.dataset.table.IncompleteTable`, these helpers bucket
attributes by cardinality and percent-missing, yielding the same kind of
summary grid the paper prints for its synthetic and census datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.table import IncompleteTable


@dataclass(frozen=True, slots=True)
class AttributeProfile:
    """Observed statistics for one attribute of a table."""

    name: str
    cardinality: int
    observed_cardinality: int
    missing_fraction: float


def profile_table(table: IncompleteTable) -> list[AttributeProfile]:
    """Per-attribute profile of a table, in schema order."""
    return [
        AttributeProfile(
            name=spec.name,
            cardinality=spec.cardinality,
            observed_cardinality=table.observed_cardinality(spec.name),
            missing_fraction=table.missing_fraction(spec.name),
        )
        for spec in table.schema
    ]


def composition_grid(
    table: IncompleteTable,
    cardinality_edges: list[int],
    missing_pct_edges: list[float],
) -> dict[tuple[str, str], int]:
    """Bucket attributes into a (cardinality band, missing band) grid.

    ``cardinality_edges`` and ``missing_pct_edges`` are ascending upper
    bounds; an implicit final band collects everything above the last edge.
    Returns ``{(card_band_label, missing_band_label): column_count}``.
    """
    card_labels = _band_labels(cardinality_edges)
    missing_labels = _band_labels(missing_pct_edges)
    grid: dict[tuple[str, str], int] = {}
    for profile in profile_table(table):
        card_band = _band_of(profile.cardinality, cardinality_edges, card_labels)
        missing_band = _band_of(
            profile.missing_fraction * 100.0, missing_pct_edges, missing_labels
        )
        key = (card_band, missing_band)
        grid[key] = grid.get(key, 0) + 1
    return grid


def _band_labels(edges: list[float] | list[int]) -> list[str]:
    labels = [f"<={edge:g}" for edge in edges]
    labels.append(f">{edges[-1]:g}")
    return labels


def _band_of(value: float, edges: list[float] | list[int], labels: list[str]) -> str:
    for edge, label in zip(edges, labels):
        if value <= edge:
            return label
    return labels[-1]


def summarize(table: IncompleteTable) -> dict[str, float]:
    """Headline statistics mirroring the paper's dataset description."""
    profiles = profile_table(table)
    cardinalities = [p.cardinality for p in profiles]
    missing = [p.missing_fraction for p in profiles]
    return {
        "num_records": float(table.num_records),
        "num_attributes": float(len(profiles)),
        "min_cardinality": float(min(cardinalities)),
        "max_cardinality": float(max(cardinalities)),
        "avg_cardinality": sum(cardinalities) / len(cardinalities),
        "min_missing_pct": min(missing) * 100.0,
        "max_missing_pct": max(missing) * 100.0,
        "avg_missing_pct": sum(missing) / len(missing) * 100.0,
    }
