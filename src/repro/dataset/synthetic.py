"""Synthetic dataset generator reproducing the paper's Table 7 (left).

The paper's synthetic dataset is "a uniformly distributed random dataset with
450 attributes and 100,000 records", where attribute cardinality varies among
{2, 5, 10, 20, 50, 100} and percent missing among {10, 20, 30, 40, 50}.  The
column-count grid is::

    Card  10% 20% 30% 40% 50%   Total
      2    10  10  10  10  10     50
      5    10  10  10  10  10     50
     10    20  20  20  20  20    100
     20    20  20  20  20  20    100
     50    20  20  20  20  20    100
    100    10  10  10  10  10     50
    Total  90  90  90  90  90    450
"""

from __future__ import annotations

import numpy as np

from repro.dataset.schema import MISSING, AttributeSpec, Schema
from repro.dataset.table import IncompleteTable

#: Table 7 (left): columns per (cardinality, percent-missing) cell.
TABLE7_SYNTHETIC_GRID: dict[int, dict[int, int]] = {
    2: {10: 10, 20: 10, 30: 10, 40: 10, 50: 10},
    5: {10: 10, 20: 10, 30: 10, 40: 10, 50: 10},
    10: {10: 20, 20: 20, 30: 20, 40: 20, 50: 20},
    20: {10: 20, 20: 20, 30: 20, 40: 20, 50: 20},
    50: {10: 20, 20: 20, 30: 20, 40: 20, 50: 20},
    100: {10: 10, 20: 10, 30: 10, 40: 10, 50: 10},
}

#: Number of records in the paper's synthetic dataset.
PAPER_SYNTHETIC_RECORDS = 100_000


def attribute_name(cardinality: int, pct_missing: int, index: int) -> str:
    """Canonical name for synthetic attribute ``index`` of a (C, Pm) cell."""
    return f"c{cardinality}_m{pct_missing}_{index}"


def uniform_column(
    num_records: int,
    cardinality: int,
    missing_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """One uniformly distributed coded column with i.i.d. missing cells.

    Values are uniform over ``1..cardinality``; each cell is independently
    missing with probability ``missing_fraction`` (missingness is random and
    independent of the value, per the paper's synthetic setup).
    """
    if not 0.0 <= missing_fraction < 1.0:
        raise ValueError(f"missing_fraction must be in [0, 1), got {missing_fraction}")
    values = rng.integers(1, cardinality + 1, size=num_records, dtype=np.int64)
    if missing_fraction > 0.0:
        mask = rng.random(num_records) < missing_fraction
        values[mask] = MISSING
    return values


def generate_synthetic(
    num_records: int = PAPER_SYNTHETIC_RECORDS,
    grid: dict[int, dict[int, int]] | None = None,
    seed: int = 2006,
) -> IncompleteTable:
    """Generate the paper's full synthetic dataset (Table 7, left).

    Parameters
    ----------
    num_records:
        Rows to generate; defaults to the paper's 100,000.
    grid:
        ``{cardinality: {pct_missing: column_count}}``; defaults to
        :data:`TABLE7_SYNTHETIC_GRID` (450 columns).
    seed:
        Seed for the deterministic PCG64 generator.
    """
    if grid is None:
        grid = TABLE7_SYNTHETIC_GRID
    rng = np.random.default_rng(seed)
    specs: list[AttributeSpec] = []
    columns: dict[str, np.ndarray] = {}
    for cardinality, by_missing in grid.items():
        for pct_missing, count in by_missing.items():
            for index in range(count):
                name = attribute_name(cardinality, pct_missing, index)
                specs.append(AttributeSpec(name, cardinality))
                columns[name] = uniform_column(
                    num_records, cardinality, pct_missing / 100.0, rng
                )
    return IncompleteTable(Schema(specs), columns, validate=False)


def generate_uniform_table(
    num_records: int,
    cardinalities: dict[str, int],
    missing_fractions: dict[str, float],
    seed: int = 0,
) -> IncompleteTable:
    """Generate an ad-hoc uniform table with per-attribute missing fractions.

    A convenience used by experiments that sweep a single (C, Pm) cell rather
    than materializing all 450 Table 7 columns.
    """
    rng = np.random.default_rng(seed)
    schema = Schema.from_cardinalities(cardinalities)
    columns = {
        name: uniform_column(
            num_records, card, missing_fractions.get(name, 0.0), rng
        )
        for name, card in cardinalities.items()
    }
    return IncompleteTable(schema, columns, validate=False)
