"""The :class:`IncompleteTable`: a column store for data with missing values.

Each column is a dense ``numpy`` integer array in which the code ``0``
(:data:`repro.dataset.schema.MISSING`) marks a missing value and codes
``1..C_i`` are the attribute's real values.  This mirrors the paper's problem
definition exactly: "assume the domain of the attribute values is the
integers from 1 to C_i".
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.dataset.schema import MISSING, AttributeSpec, Schema
from repro.errors import SchemaError


class IncompleteTable:
    """An immutable columnar table whose cells may be missing.

    Parameters
    ----------
    schema:
        The table schema.
    columns:
        Mapping from attribute name to a 1-D integer array.  All columns must
        share one length; values must lie in ``{0} | {1..C_i}``.
    validate:
        When true (the default), check every column against the schema.
        Generators that construct provably valid codes may pass ``False``.
    """

    __slots__ = ("_schema", "_columns", "_num_records")

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        *,
        validate: bool = True,
    ):
        self._schema = schema
        if set(columns) != set(schema.names):
            missing_cols = set(schema.names) - set(columns)
            extra_cols = set(columns) - set(schema.names)
            raise SchemaError(
                f"columns do not match schema (missing={sorted(missing_cols)}, "
                f"extra={sorted(extra_cols)})"
            )
        coerced: dict[str, np.ndarray] = {}
        lengths = {len(col) for col in columns.values()}
        if len(lengths) != 1:
            raise SchemaError(f"columns have differing lengths: {sorted(lengths)}")
        self._num_records = lengths.pop()
        for spec in schema:
            col = np.asarray(columns[spec.name])
            if col.ndim != 1:
                raise SchemaError(f"column {spec.name!r} must be 1-D")
            col = col.astype(np.int64, copy=False)
            if validate and len(col):
                lo = int(col.min())
                hi = int(col.max())
                if lo < 0 or hi > spec.cardinality:
                    raise SchemaError(
                        f"column {spec.name!r} has values outside "
                        f"{{0}} | 1..{spec.cardinality} (min={lo}, max={hi})"
                    )
            col.setflags(write=False)
            coerced[spec.name] = col
        self._columns = coerced

    @classmethod
    def from_records(
        cls,
        schema: Schema,
        records: Iterable[Mapping[str, int | None]],
    ) -> "IncompleteTable":
        """Build a table from row dictionaries; ``None`` marks a missing cell."""
        rows = list(records)
        columns = {
            name: np.array(
                [MISSING if row.get(name) is None else int(row[name]) for row in rows],
                dtype=np.int64,
            )
            for name in schema.names
        }
        return cls(schema, columns)

    @property
    def schema(self) -> Schema:
        """The table schema."""
        return self._schema

    @property
    def num_records(self) -> int:
        """Number of records (the paper's ``n``)."""
        return self._num_records

    def column(self, name: str) -> np.ndarray:
        """The coded column for ``name`` (read-only view; 0 = missing)."""
        self._schema.attribute(name)
        return self._columns[name]

    def missing_mask(self, name: str) -> np.ndarray:
        """Boolean mask of records whose ``name`` value is missing."""
        return self.column(name) == MISSING

    def present_mask(self, name: str) -> np.ndarray:
        """Boolean mask of records whose ``name`` value is present."""
        return self.column(name) != MISSING

    def missing_fraction(self, name: str) -> float:
        """Fraction of records missing the ``name`` attribute."""
        if self._num_records == 0:
            return 0.0
        return float(self.missing_mask(name).mean())

    def observed_cardinality(self, name: str) -> int:
        """Number of distinct non-missing values actually present."""
        col = self.column(name)
        present = col[col != MISSING]
        if len(present) == 0:
            return 0
        return int(len(np.unique(present)))

    def value(self, record: int, name: str) -> int | None:
        """Cell value for one record, or ``None`` when missing."""
        code = int(self.column(name)[record])
        return None if code == MISSING else code

    def select(self, names: Iterable[str]) -> "IncompleteTable":
        """Project the table onto a subset of attributes."""
        names = list(names)
        sub = Schema(self._schema.attribute(n) for n in names)
        return IncompleteTable(
            sub, {n: self._columns[n] for n in names}, validate=False
        )

    def take(self, record_ids: np.ndarray) -> "IncompleteTable":
        """Materialize a row subset of the table."""
        record_ids = np.asarray(record_ids, dtype=np.int64)
        return IncompleteTable(
            self._schema,
            {n: c[record_ids] for n, c in self._columns.items()},
            validate=False,
        )

    def nbytes(self) -> int:
        """Total bytes held by the coded column arrays."""
        return sum(col.nbytes for col in self._columns.values())

    def __len__(self) -> int:
        return self._num_records

    def __repr__(self) -> str:
        return (
            f"IncompleteTable({self._num_records} records x "
            f"{self._schema.dimensionality} attributes)"
        )


def concat_tables(first: IncompleteTable, second: IncompleteTable) -> IncompleteTable:
    """Concatenate two tables with identical schemas (append rows)."""
    if first.schema != second.schema:
        raise SchemaError("cannot concatenate tables with different schemas")
    columns = {
        name: np.concatenate([first.column(name), second.column(name)])
        for name in first.schema.names
    }
    return IncompleteTable(first.schema, columns, validate=False)


def specs_for_columns(columns: Mapping[str, np.ndarray]) -> Schema:
    """Infer a schema from coded columns, using each column's max as ``C_i``."""
    specs = []
    for name, col in columns.items():
        col = np.asarray(col)
        cardinality = int(col.max()) if len(col) else 1
        specs.append(AttributeSpec(name, max(cardinality, 1)))
    return Schema(specs)
