"""Save/load :class:`IncompleteTable` instances as ``.npz`` archives.

The on-disk format stores one array per column plus a parallel pair of
metadata arrays (names and cardinalities), so a saved table round-trips its
schema exactly even when some domain values never occur in the data.

Tables are written through :mod:`repro.storage.integrity`: the compressed
``.npz`` bytes ride inside a checksummed ``RPF1`` frame and reach disk via
an atomic temp-file + rename, so torn writes and bit rot surface as
:class:`~repro.errors.CorruptIndexError` instead of a wrong table.  Plain
(unframed) ``.npz`` files from older versions still load.

``np.savez_compressed`` historically appended ``.npz`` to suffix-less
paths, which made ``save_table(t, "foo")`` write ``foo.npz`` while
``load_table("foo")`` looked for ``foo``.  Both directions now normalize
the path the same way: a path without an ``.npz`` suffix gets one appended
on save *and* on load, so every name that saves also loads.
"""

from __future__ import annotations

import io
import os
import zipfile

import numpy as np

from repro.dataset.schema import AttributeSpec, Schema
from repro.dataset.table import IncompleteTable
from repro.errors import CorruptIndexError, ReproError
from repro.observability import record
from repro.storage.integrity import is_framed, parse_frame, write_framed

_NAMES_KEY = "__names__"
_CARDS_KEY = "__cardinalities__"
_SECTION = "table.npz"


def _normalized(path: str | os.PathLike) -> str:
    """The on-disk path for ``path``: ``.npz`` appended unless present."""
    name = os.fspath(path)
    return name if name.endswith(".npz") else name + ".npz"


def save_table(table: IncompleteTable, path: str | os.PathLike) -> int:
    """Atomically write ``table`` to ``path`` as a checksummed ``.npz``.

    Returns the number of bytes written.  A path without an ``.npz``
    suffix gets one appended (matching :func:`load_table`).
    """
    arrays: dict[str, np.ndarray] = {
        _NAMES_KEY: np.array(table.schema.names, dtype=np.str_),
        _CARDS_KEY: np.array(
            [spec.cardinality for spec in table.schema], dtype=np.int64
        ),
    }
    for index, name in enumerate(table.schema.names):
        arrays[f"col_{index}"] = table.column(name)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return write_framed(_normalized(path), [(_SECTION, buffer.getvalue())])


def load_table(path: str | os.PathLike) -> IncompleteTable:
    """Read a table previously written by :func:`save_table`."""
    actual = _normalized(path)
    with open(actual, "rb") as handle:
        data = handle.read()
    if is_framed(data):
        sections = parse_frame(data, source=actual)
        data = b"".join(payload for _, payload in sections)
    else:
        record("storage.legacy_loads")
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            if _NAMES_KEY not in archive or _CARDS_KEY not in archive:
                raise CorruptIndexError(
                    f"{actual}: not a saved IncompleteTable archive"
                )
            names = [str(n) for n in archive[_NAMES_KEY]]
            cardinalities = archive[_CARDS_KEY]
            if len(names) != len(cardinalities):
                raise CorruptIndexError(
                    f"{actual}: schema metadata arrays disagree"
                )
            schema = Schema(
                AttributeSpec(name, int(card))
                for name, card in zip(names, cardinalities)
            )
            columns = {
                name: archive[f"col_{index}"]
                for index, name in enumerate(names)
            }
            return IncompleteTable(schema, columns)
    except CorruptIndexError:
        raise
    except (ReproError, zipfile.BadZipFile, ValueError, KeyError,
            OSError, EOFError) as exc:
        # Reachable only for unframed legacy files (framed corruption is
        # caught by the CRCs above), but the contract is the same either
        # way: a damaged table file raises CorruptIndexError, never a raw
        # numpy/zipfile traceback and never a silently wrong table.
        raise CorruptIndexError(
            f"{actual}: corrupt table archive ({exc})"
        ) from exc
