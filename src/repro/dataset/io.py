"""Save/load :class:`IncompleteTable` instances as ``.npz`` archives.

The on-disk format stores one array per column plus a parallel pair of
metadata arrays (names and cardinalities), so a saved table round-trips its
schema exactly even when some domain values never occur in the data.
"""

from __future__ import annotations

import os

import numpy as np

from repro.dataset.schema import AttributeSpec, Schema
from repro.dataset.table import IncompleteTable
from repro.errors import CorruptIndexError

_NAMES_KEY = "__names__"
_CARDS_KEY = "__cardinalities__"


def save_table(table: IncompleteTable, path: str | os.PathLike) -> None:
    """Write ``table`` to ``path`` as a compressed ``.npz`` archive."""
    arrays: dict[str, np.ndarray] = {
        _NAMES_KEY: np.array(table.schema.names, dtype=np.str_),
        _CARDS_KEY: np.array(
            [spec.cardinality for spec in table.schema], dtype=np.int64
        ),
    }
    for index, name in enumerate(table.schema.names):
        arrays[f"col_{index}"] = table.column(name)
    np.savez_compressed(path, **arrays)


def load_table(path: str | os.PathLike) -> IncompleteTable:
    """Read a table previously written by :func:`save_table`."""
    with np.load(path, allow_pickle=False) as archive:
        if _NAMES_KEY not in archive or _CARDS_KEY not in archive:
            raise CorruptIndexError(f"{path}: not a saved IncompleteTable archive")
        names = [str(n) for n in archive[_NAMES_KEY]]
        cardinalities = archive[_CARDS_KEY]
        if len(names) != len(cardinalities):
            raise CorruptIndexError(f"{path}: schema metadata arrays disagree")
        schema = Schema(
            AttributeSpec(name, int(card))
            for name, card in zip(names, cardinalities)
        )
        columns = {
            name: archive[f"col_{index}"] for index, name in enumerate(names)
        }
        return IncompleteTable(schema, columns)
