"""CSV import/export for incomplete tables.

Real incomplete data usually arrives as CSV with empty cells for missing
values.  :func:`read_csv` dictionary-encodes every column into the coded
integer domain this library indexes (``1..C`` plus 0 for missing) and
returns the table together with the per-attribute
:class:`~repro.dataset.dictionary.ValueDictionary` objects needed to decode
results; :func:`write_csv` is the inverse.

Columns whose non-missing cells all parse as integers are ordered
numerically (so range queries over them behave as expected); everything
else is treated as categorical text ordered lexicographically.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable

import numpy as np

from repro.dataset.dictionary import ValueDictionary
from repro.dataset.schema import AttributeSpec, Schema
from repro.dataset.table import IncompleteTable
from repro.errors import SchemaError

#: Cell spellings treated as missing on import (case-insensitive).
MISSING_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "none", "?"})


def _parse_cell(cell: str):
    """Raw value for a CSV cell: None when missing, int when numeric."""
    stripped = cell.strip()
    if stripped.lower() in MISSING_TOKENS:
        return None
    try:
        return int(stripped)
    except ValueError:
        return stripped


def read_csv(
    path: str | os.PathLike,
    missing_tokens: Iterable[str] | None = None,
) -> tuple[IncompleteTable, dict[str, ValueDictionary]]:
    """Load a headered CSV as a coded table plus decode dictionaries.

    Parameters
    ----------
    path:
        CSV file with a header row.
    missing_tokens:
        Cell spellings (case-insensitive) to treat as missing; defaults to
        :data:`MISSING_TOKENS`.
    """
    tokens = (
        frozenset(t.lower() for t in missing_tokens)
        if missing_tokens is not None
        else MISSING_TOKENS
    )
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: CSV file is empty")
        if len(set(header)) != len(header):
            raise SchemaError(f"{path}: duplicate column names in header")
        raw_columns: dict[str, list] = {name: [] for name in header}
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise SchemaError(
                    f"{path}:{line_no}: expected {len(header)} cells, "
                    f"got {len(row)}"
                )
            for name, cell in zip(header, row):
                stripped = cell.strip()
                if stripped.lower() in tokens:
                    raw_columns[name].append(None)
                else:
                    raw_columns[name].append(_parse_cell(stripped))

    specs = []
    columns: dict[str, np.ndarray] = {}
    dictionaries: dict[str, ValueDictionary] = {}
    for name in header:
        raw = raw_columns[name]
        present = [v for v in raw if v is not None]
        if present and not all(isinstance(v, int) for v in present):
            # Mixed numeric/text: treat everything as text.
            raw = [str(v) if v is not None else None for v in raw]
        dictionary = ValueDictionary.fit(raw, ordered=True)
        cardinality = max(1, dictionary.cardinality)
        specs.append(AttributeSpec(name, cardinality))
        columns[name] = dictionary.encode(raw)
        dictionaries[name] = dictionary
    table = IncompleteTable(Schema(specs), columns)
    return table, dictionaries


def write_csv(
    table: IncompleteTable,
    dictionaries: dict[str, ValueDictionary],
    path: str | os.PathLike,
    missing_token: str = "",
) -> None:
    """Write a coded table back to CSV using its decode dictionaries."""
    names = table.schema.names
    for name in names:
        if name not in dictionaries:
            raise SchemaError(f"no dictionary for attribute {name!r}")
    decoded = {
        name: dictionaries[name].decode(table.column(name)) for name in names
    }
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for row_index in range(table.num_records):
            writer.writerow(
                [
                    missing_token
                    if decoded[name][row_index] is None
                    else decoded[name][row_index]
                    for name in names
                ]
            )
