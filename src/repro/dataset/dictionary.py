"""Value dictionaries: mapping raw attribute values to integer codes.

The paper assumes attributes are already coded as integers ``1..C``.  Real
data arrives as strings, floats, or sparse integers; a
:class:`ValueDictionary` provides the bidirectional mapping (raw value <->
code) with ``None``/empty standing for missing (code 0), so any categorical
column can be indexed by this library.

Codes are assigned in first-seen order by default, or in sorted order when
``ordered=True`` — use ordered dictionaries when range queries over the raw
values must be meaningful (range encoding compares *codes*).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

import numpy as np

from repro.dataset.schema import MISSING
from repro.errors import DomainError, SchemaError


class ValueDictionary:
    """A bidirectional raw-value <-> code mapping for one attribute.

    Parameters
    ----------
    values:
        Raw values in code order (code 1 first).  Use :meth:`fit` to build
        one from data.
    """

    __slots__ = ("_values", "_codes")

    def __init__(self, values: Iterable[Hashable]):
        self._values: list[Hashable] = []
        self._codes: dict[Hashable, int] = {}
        for value in values:
            if value is None:
                raise SchemaError("None cannot be a dictionary value (it means missing)")
            if value in self._codes:
                raise SchemaError(f"duplicate dictionary value {value!r}")
            self._values.append(value)
            self._codes[value] = len(self._values)

    @classmethod
    def fit(
        cls,
        raw: Iterable[Hashable],
        ordered: bool = False,
    ) -> "ValueDictionary":
        """Build a dictionary from raw data; ``None`` entries are skipped.

        ``ordered=True`` assigns codes in sorted raw-value order so that
        code comparisons mirror raw-value comparisons (required for
        meaningful range queries on the raw domain).
        """
        seen: dict[Hashable, None] = {}
        for value in raw:
            if value is not None and value not in seen:
                seen[value] = None
        values: Iterable[Hashable] = seen
        if ordered:
            values = sorted(seen)
        return cls(values)

    @property
    def cardinality(self) -> int:
        """Number of distinct raw values (the attribute's ``C``)."""
        return len(self._values)

    def encode_value(self, value: Hashable | None) -> int:
        """Code for one raw value; ``None`` encodes as missing (0)."""
        if value is None:
            return MISSING
        try:
            return self._codes[value]
        except KeyError:
            raise DomainError(f"value {value!r} is not in the dictionary")

    def decode_value(self, code: int) -> Hashable | None:
        """Raw value for one code; 0 decodes as ``None`` (missing)."""
        if code == MISSING:
            return None
        if not 1 <= code <= len(self._values):
            raise DomainError(
                f"code {code} outside 1..{len(self._values)}"
            )
        return self._values[code - 1]

    def encode(self, raw: Iterable[Hashable | None]) -> np.ndarray:
        """Coded column for a raw iterable."""
        return np.array([self.encode_value(v) for v in raw], dtype=np.int64)

    def decode(self, codes: Iterable[int]) -> list[Hashable | None]:
        """Raw values for a coded sequence."""
        return [self.decode_value(int(c)) for c in codes]

    def __contains__(self, value: Hashable) -> bool:
        return value in self._codes

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValueDictionary):
            return NotImplemented
        return self._values == other._values

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._values[:4])
        suffix = ", ..." if len(self._values) > 4 else ""
        return f"ValueDictionary([{preview}{suffix}], C={len(self._values)})"
