"""Dataset substrate: incomplete tables, schemas, generators, and profiling."""

from repro.dataset.census import (
    PAPER_CENSUS_RECORDS,
    TABLE7_CENSUS_GRID,
    generate_census_like,
    sample_census_profiles,
)
from repro.dataset.csv_io import read_csv, write_csv
from repro.dataset.dictionary import ValueDictionary
from repro.dataset.io import load_table, save_table
from repro.dataset.reorder import gray_order, lexicographic_order, reorder
from repro.dataset.schema import MISSING, AttributeSpec, Schema
from repro.dataset.stats import composition_grid, profile_table, summarize
from repro.dataset.synthetic import (
    PAPER_SYNTHETIC_RECORDS,
    TABLE7_SYNTHETIC_GRID,
    generate_synthetic,
    generate_uniform_table,
)
from repro.dataset.table import IncompleteTable, concat_tables

__all__ = [
    "ValueDictionary",
    "concat_tables",
    "read_csv",
    "write_csv",
    "gray_order",
    "lexicographic_order",
    "reorder",
    "MISSING",
    "AttributeSpec",
    "IncompleteTable",
    "PAPER_CENSUS_RECORDS",
    "PAPER_SYNTHETIC_RECORDS",
    "Schema",
    "TABLE7_CENSUS_GRID",
    "TABLE7_SYNTHETIC_GRID",
    "composition_grid",
    "generate_census_like",
    "generate_synthetic",
    "generate_uniform_table",
    "load_table",
    "profile_table",
    "sample_census_profiles",
    "save_table",
    "summarize",
]
