"""Row reordering to improve bitmap compression (the paper's future work).

Section 6: "The biggest weakness of the range encoded bitmaps is the
inability to compress them.  We would like to explore techniques such as
BBC compression and row reordering in order to achieve more compression of
these bitmaps."

Run-length codes like WAH feed on runs of equal bits, and runs in a
bitmap's columns correspond to consecutive *rows* with equal (or close)
values — so permuting rows so that similar records are adjacent lengthens
runs in every bitmap at once.  Two classic orderings are provided:

* :func:`lexicographic_order` — sort rows by their coded values, most
  significant attribute first.  Long runs for the leading attributes.
* :func:`gray_order` — mixed-radix Gray ordering: like lexicographic, but
  each attribute's sort direction alternates with the parity of the prefix,
  so consecutive rows differ in as few attribute transitions as possible.
  This is the ordering used by the bitmap-reordering literature.

Both return a permutation; :func:`reorder_table` applies it.  Reordering
changes record ids, so query results over a reordered table refer to the
new positions — keep the permutation to translate back.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.table import IncompleteTable
from repro.errors import ReproError


def _ordered_columns(
    table: IncompleteTable, attributes: list[str] | None
) -> list[np.ndarray]:
    names = list(attributes) if attributes is not None else list(table.schema.names)
    if not names:
        raise ReproError("row reordering requires at least one attribute")
    return [table.column(name) for name in names]


def lexicographic_order(
    table: IncompleteTable, attributes: list[str] | None = None
) -> np.ndarray:
    """Permutation sorting rows lexicographically by the given attributes.

    The first listed attribute is the most significant sort key.  Missing
    values (code 0) sort before all real values.
    """
    columns = _ordered_columns(table, attributes)
    # np.lexsort treats the *last* key as most significant.
    return np.lexsort(tuple(reversed(columns)))


def gray_order(
    table: IncompleteTable, attributes: list[str] | None = None
) -> np.ndarray:
    """Permutation sorting rows in mixed-radix Gray order.

    The Gray transform flips each digit's direction according to the parity
    of the (transformed) digits before it, then sorts lexicographically on
    the transformed digits.  Consecutive rows then tend to differ in only
    the least significant attributes, maximizing run lengths across the
    whole bitmap family.
    """
    names = list(attributes) if attributes is not None else list(table.schema.names)
    columns = _ordered_columns(table, names)
    parity = np.zeros(table.num_records, dtype=np.int64)
    transformed: list[np.ndarray] = []
    for name, column in zip(names, columns):
        radix = table.schema.cardinality(name) + 1  # codes 0..C
        digits = np.where(parity % 2 == 0, column, radix - 1 - column)
        transformed.append(digits)
        parity = parity + digits
    return np.lexsort(tuple(reversed(transformed)))


#: Named reordering strategies.
STRATEGIES = {
    "lexicographic": lexicographic_order,
    "gray": gray_order,
}


def reorder_table(
    table: IncompleteTable, permutation: np.ndarray
) -> IncompleteTable:
    """A new table whose row ``i`` is the old row ``permutation[i]``."""
    permutation = np.asarray(permutation, dtype=np.int64)
    if len(permutation) != table.num_records:
        raise ReproError(
            f"permutation length {len(permutation)} != {table.num_records} records"
        )
    if not np.array_equal(np.sort(permutation), np.arange(table.num_records)):
        raise ReproError("permutation is not a bijection over record ids")
    return table.take(permutation)


def reorder(
    table: IncompleteTable,
    strategy: str = "gray",
    attributes: list[str] | None = None,
) -> tuple[IncompleteTable, np.ndarray]:
    """Reorder a table by a named strategy; returns ``(table, permutation)``.

    ``permutation[i]`` is the *original* record id now stored at position
    ``i``; use it to translate query results on the reordered table back to
    original ids.
    """
    try:
        order_fn = STRATEGIES[strategy]
    except KeyError:
        raise ReproError(
            f"unknown reordering strategy {strategy!r}; "
            f"expected one of {sorted(STRATEGIES)}"
        )
    permutation = order_fn(table, attributes)
    return reorder_table(table, permutation), permutation
