"""Dataset schemas: attribute specifications for incomplete tables.

Attributes follow the paper's convention: each attribute ``A_i`` takes
integer values in ``1..C_i`` (``C_i`` is the attribute *cardinality*) or is
missing.  Internally, missing is coded as ``0`` — "the next smallest possible
value outside the lower bound of the domain" in the paper's words — which
keeps every coded column a dense non-negative integer array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SchemaError

#: Internal integer code used for a missing value in every coded column.
MISSING = 0


@dataclass(frozen=True, slots=True)
class AttributeSpec:
    """Specification of a single attribute.

    Parameters
    ----------
    name:
        Attribute name, unique within a schema.
    cardinality:
        Number of distinct non-missing values; the domain is ``1..cardinality``.
    """

    name: str
    cardinality: int

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.cardinality < 1:
            raise SchemaError(
                f"attribute {self.name!r}: cardinality must be >= 1, "
                f"got {self.cardinality}"
            )

    def validate_value(self, value: int) -> None:
        """Raise :class:`SchemaError` unless ``value`` is in the domain or MISSING."""
        if value != MISSING and not 1 <= value <= self.cardinality:
            raise SchemaError(
                f"value {value} outside domain 1..{self.cardinality} "
                f"of attribute {self.name!r}"
            )


class Schema:
    """An ordered collection of :class:`AttributeSpec` with unique names."""

    __slots__ = ("_specs", "_by_name")

    def __init__(self, specs: Iterable[AttributeSpec]):
        self._specs: tuple[AttributeSpec, ...] = tuple(specs)
        if not self._specs:
            raise SchemaError("schema must contain at least one attribute")
        self._by_name: dict[str, AttributeSpec] = {}
        for spec in self._specs:
            if spec.name in self._by_name:
                raise SchemaError(f"duplicate attribute name {spec.name!r}")
            self._by_name[spec.name] = spec

    @classmethod
    def from_cardinalities(cls, cardinalities: dict[str, int]) -> "Schema":
        """Build a schema from ``{name: cardinality}`` pairs."""
        return cls(AttributeSpec(n, c) for n, c in cardinalities.items())

    @property
    def names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(spec.name for spec in self._specs)

    @property
    def dimensionality(self) -> int:
        """Number of attributes (the paper's ``d``)."""
        return len(self._specs)

    def attribute(self, name: str) -> AttributeSpec:
        """Look up an attribute spec by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"schema has no attribute named {name!r}")

    def cardinality(self, name: str) -> int:
        """Cardinality ``C_i`` of the named attribute."""
        return self.attribute(name).cardinality

    def __iter__(self) -> Iterator[AttributeSpec]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._specs == other._specs

    def __repr__(self) -> str:
        inner = ", ".join(f"{s.name}:C={s.cardinality}" for s in self._specs)
        return f"Schema({inner})"
