"""Census-like skewed dataset generator reproducing Table 7 (right).

The paper evaluates on a real census dataset (48 attributes, 463,733 records,
cardinalities 2–165 averaging 37, percent missing 0–98.5% averaging 41%).
That dataset is not redistributable, so we synthesize a dataset with the same
*structural* profile — the properties the paper's real-data conclusions
actually depend on:

* the Table 7 (right) grid of column counts per cardinality band
  ({<10, 10–50, 51–100, >100}) and missing band ({0, <=10, <=25, <=50, >50});
* heavy value skew (Zipf-like), which drives bit densities toward 0/1 and
  therefore the WAH compression ratios reported in Section 5.2;
* very high missing rates on a subset of attributes (8 attributes above 90%
  missing in the paper).

See DESIGN.md, "Substitutions", for the fidelity argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.schema import MISSING, AttributeSpec, Schema
from repro.dataset.table import IncompleteTable

#: Number of records in the paper's census dataset.
PAPER_CENSUS_RECORDS = 463_733

#: Table 7 (right): column counts per (cardinality band, missing band).
#: Bands: cardinality {'<10', '10-50', '51-100', '>100'} x
#: missing  {'0', '<=10', '<=25', '<=50', '>50'} (percent).
TABLE7_CENSUS_GRID: dict[str, dict[str, int]] = {
    "<10": {"0": 11, "<=10": 0, "<=25": 2, "<=50": 2, ">50": 0},
    "10-50": {"0": 7, "<=10": 2, "<=25": 3, "<=50": 5, ">50": 4},
    "51-100": {"0": 2, "<=10": 0, "<=25": 1, "<=50": 2, ">50": 2},
    ">100": {"0": 0, "<=10": 0, "<=25": 1, "<=50": 2, ">50": 2},
}

#: Inclusive cardinality sampling range for each cardinality band.  The paper
#: reports cardinalities from 2 to 165.
_CARDINALITY_RANGES: dict[str, tuple[int, int]] = {
    "<10": (2, 9),
    "10-50": (10, 50),
    "51-100": (51, 100),
    ">100": (101, 165),
}

#: Missing-percent sampling range for each missing band.  The paper reports
#: missing rates from 0% to 98.5% with 8 attributes above 90%.
_MISSING_RANGES: dict[str, tuple[float, float]] = {
    "0": (0.0, 0.0),
    "<=10": (0.5, 10.0),
    "<=25": (10.5, 25.0),
    "<=50": (25.5, 50.0),
    ">50": (50.5, 98.5),
}


@dataclass(frozen=True, slots=True)
class CensusColumnProfile:
    """Sampled profile for one census-like attribute."""

    name: str
    cardinality: int
    missing_fraction: float
    zipf_skew: float


def zipf_weights(cardinality: int, skew: float) -> np.ndarray:
    """Normalized Zipf(``skew``) probabilities over values ``1..cardinality``."""
    ranks = np.arange(1, cardinality + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def skewed_column(
    num_records: int,
    cardinality: int,
    missing_fraction: float,
    skew: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """One Zipf-skewed coded column with i.i.d. missing cells."""
    probs = zipf_weights(cardinality, skew)
    values = rng.choice(
        np.arange(1, cardinality + 1, dtype=np.int64), size=num_records, p=probs
    )
    if missing_fraction > 0.0:
        mask = rng.random(num_records) < missing_fraction
        values[mask] = MISSING
    return values


def sample_census_profiles(
    seed: int = 1990,
    grid: dict[str, dict[str, int]] | None = None,
) -> list[CensusColumnProfile]:
    """Sample one attribute profile per Table 7 (right) grid cell slot.

    Profiles are deterministic given ``seed``.  Skew is sampled in
    ``[1.0, 2.2]``: heavy enough that frequent values dominate, matching the
    paper's observation that real columns compress to 0.001–1.03 of raw size
    (their equality-encoded index compressed to 0.17 overall).
    """
    if grid is None:
        grid = TABLE7_CENSUS_GRID
    rng = np.random.default_rng(seed)
    profiles: list[CensusColumnProfile] = []
    index = 0
    for card_band, by_missing in grid.items():
        lo_c, hi_c = _CARDINALITY_RANGES[card_band]
        for missing_band, count in by_missing.items():
            lo_m, hi_m = _MISSING_RANGES[missing_band]
            for _ in range(count):
                cardinality = int(rng.integers(lo_c, hi_c + 1))
                missing_pct = float(rng.uniform(lo_m, hi_m))
                skew = float(rng.uniform(1.0, 2.2))
                profiles.append(
                    CensusColumnProfile(
                        name=f"census_{index:02d}",
                        cardinality=cardinality,
                        missing_fraction=missing_pct / 100.0,
                        zipf_skew=skew,
                    )
                )
                index += 1
    # The paper reports 8 attributes with more than 90% missing data; pin the
    # four ">50" high-cardinality-band columns plus four others to >90%.
    high_missing = [p for p in profiles if p.missing_fraction > 0.505]
    promoted = 0
    for i, profile in enumerate(profiles):
        if profile in high_missing and promoted < 8:
            profiles[i] = CensusColumnProfile(
                name=profile.name,
                cardinality=profile.cardinality,
                missing_fraction=float(rng.uniform(0.905, 0.985)),
                zipf_skew=profile.zipf_skew,
            )
            promoted += 1
    return profiles


def generate_census_like(
    num_records: int = PAPER_CENSUS_RECORDS,
    seed: int = 1990,
    grid: dict[str, dict[str, int]] | None = None,
) -> IncompleteTable:
    """Generate the census-like dataset (48 attributes by default).

    Parameters
    ----------
    num_records:
        Rows to generate; defaults to the paper's 463,733.  Experiments scale
        this down for CI while preserving the column profile.
    seed:
        Seed controlling both the profile sampling and the data.
    grid:
        Override of the Table 7 (right) column-count grid.
    """
    profiles = sample_census_profiles(seed=seed, grid=grid)
    rng = np.random.default_rng(seed + 1)
    specs = [AttributeSpec(p.name, p.cardinality) for p in profiles]
    columns = {
        p.name: skewed_column(
            num_records, p.cardinality, p.missing_fraction, p.zipf_skew, rng
        )
        for p in profiles
    }
    return IncompleteTable(Schema(specs), columns, validate=False)
